//! [`BatchEngine`]: micro-batching transform execution on a bounded thread pool.
//!
//! Transform requests are tiny (often a handful of instances) while the dense kernels
//! amortize best over many columns. The engine therefore **coalesces** concurrent
//! requests for the same model into one batched call:
//!
//! 1. a dispatcher thread pops the oldest pending request, opening a batch for that
//!    request's `(model, op)` key — full transforms and per-view projections batch
//!    separately,
//! 2. it keeps absorbing queued requests for the *same* key until the batch holds
//!    [`BatchConfig::max_batch`] instances or [`BatchConfig::max_wait`] has elapsed
//!    since the batch opened,
//! 3. the batch is joined along the instance axis and executed as **one** model
//!    call on the engine's [`parallel::Pool`] ([`Pool::shared`] by default, a
//!    dedicated pool per router shard), so concurrent fits and transforms share
//!    bounded pools instead of oversubscribing the machine. A coalesced
//!    `transform_view` batch of feature views is the **zero-copy** path: the
//!    request matrices are wrapped in a borrowed [`linalg::ColsView`] and the
//!    model's blocked GEMM packs its panels straight from them — no stitched
//!    copy is ever materialized ([`EngineStats::zero_copy_batches`] counts these,
//!    and [`linalg::matrix_clones`] / [`linalg::input_stitches`] let tests assert
//!    the absence of copies). Full `transform` batches and kernel-block batches
//!    still stitch (`hstack` of per-view matrices / `vstack` of kernel rows),
//! 4. the embedding rows are split back per request.
//!
//! Singleton batches — the window closed with one request — bypass the
//! coalescing machinery entirely: the model is called directly on the borrowed
//! request input, with no stitch and no copy regardless of the op or input kind.
//!
//! Submission is **callback-based** ([`BatchEngine::submit_transform`] and
//! friends) and inputs arrive `Arc`-shared: the router's retryable submissions
//! and the engine's queue all hold the same buffers the server decoded off the
//! wire, so the happy path never deep-copies a request matrix. Blocking wrappers
//! ([`BatchEngine::transform`], …) remain for direct callers.
//!
//! If a batched call fails (e.g. a transductive DSE model that only accepts its
//! exact training batch, or one malformed request in the batch), the engine falls
//! back to executing the batch's requests individually so a bad request cannot
//! poison its neighbours. Requests for *different* models never wait on each other
//! beyond queue order: each batch is dispatched to the pool asynchronously and the
//! dispatcher immediately opens the next one.

use crate::store::ViewShadowF32;
use crate::wire::{CandidateKind, NamedOutput, Precision};
use crate::{ModelStore, Result, ServeError};
use linalg::{ColsView, Matrix};
use mvcore::{InputKind, MultiViewModel, Output};
use parallel::Pool;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Completion callback for an asynchronously submitted transform. Invoked exactly
/// once, from a pool worker (or from the dispatcher/submitter on fast-fail paths).
pub type ReplyCallback = Box<dyn FnOnce(Result<Matrix>) + Send + 'static>;

/// Completion callback for an `outputs` request: the model's named candidates.
pub type OutputsCallback = Box<dyn FnOnce(Result<Vec<NamedOutput>>) + Send + 'static>;

/// Micro-batching and admission-control knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum instances coalesced into one `transform` call.
    pub max_batch: usize,
    /// Maximum time a batch stays open waiting for more same-model requests.
    pub max_wait: Duration,
    /// Total queued requests the engine admits before shedding with
    /// [`ServeError::Overloaded`] (0 = unbounded). A full queue means the
    /// execution pool is behind; admitting more work only grows latency for
    /// answers nobody is still waiting on.
    pub max_queue: usize,
    /// Queued requests one model may hold before its *additional* requests are
    /// shed (0 = unbounded). Bounds how far a single hot tenant can starve the
    /// rest of the queue.
    pub max_per_model: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            max_wait: Duration::from_millis(2),
            max_queue: 4096,
            max_per_model: 1024,
        }
    }
}

/// Counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transform requests accepted.
    pub requests: usize,
    /// Batched `transform` executions (≤ `requests` when coalescing happens).
    pub batches: usize,
    /// Requests that were coalesced into a batch with at least one other request.
    pub coalesced_requests: usize,
    /// Batches that failed as a whole and were retried request by request.
    pub fallbacks: usize,
    /// Batches of exactly one request, executed directly on the borrowed input
    /// with no stitching or copying of any kind.
    pub singleton_batches: usize,
    /// Coalesced `transform_view` batches that completed through the zero-copy
    /// [`linalg::ColsView`] path without materializing any stitched input —
    /// verified against the stitch counter, so a model that falls back to the
    /// stitching default impl is never miscounted as zero-copy.
    pub zero_copy_batches: usize,
    /// Requests shed at admission because the whole queue was full.
    pub shed_queue_full: usize,
    /// Requests shed at admission because their model hit its per-model cap.
    pub shed_model_limit: usize,
    /// Requests dropped (in-band, with [`ServeError::DeadlineExceeded`]) because
    /// their deadline passed before execution.
    pub deadline_dropped: usize,
    /// View requests served through the opt-in `f32` fast path (v6): the model
    /// exposed an `f32` shadow of the requested view's projection and the batch
    /// ran through it. `F32` requests against models without a shadow fall back
    /// to `f64` and are *not* counted — the counter reports what actually ran.
    pub f32_transforms: usize,
}

impl EngineStats {
    /// The counters as name/value pairs, the shape the wire-level `Stats` op
    /// reports (and a router sums across shards).
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("requests".into(), self.requests as u64),
            ("batches".into(), self.batches as u64),
            ("coalesced_requests".into(), self.coalesced_requests as u64),
            ("fallbacks".into(), self.fallbacks as u64),
            ("singleton_batches".into(), self.singleton_batches as u64),
            ("zero_copy_batches".into(), self.zero_copy_batches as u64),
            ("shed_queue_full".into(), self.shed_queue_full as u64),
            ("shed_model_limit".into(), self.shed_model_limit as u64),
            ("deadline_dropped".into(), self.deadline_dropped as u64),
            ("engine/f32_transforms".into(), self.f32_transforms as u64),
        ]
    }
}

/// What a pending request asks the model to do — part of the batching key, so
/// full transforms and per-view projections never coalesce with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchOp {
    /// `model.transform(all views)`.
    Transform,
    /// `model.transform_view(v, view)` — single-view requests carry exactly one
    /// matrix, so batching them stitches **one** view instead of all `m`. The
    /// requested [`Precision`] is part of the key: `f32` and `f64` requests
    /// never coalesce into one model call, so each request gets exactly the
    /// arithmetic it asked for.
    View(usize, Precision),
}

/// A request's input matrices, `Arc`-shared with the submitter (the server's
/// decoded frames, or the router's retry state) so queueing never copies them.
enum PendingInputs {
    /// All views of a full `transform` request.
    Full(Arc<Vec<Matrix>>),
    /// The single matrix of a `transform_view` request.
    View(Arc<Matrix>),
}

impl PendingInputs {
    /// The matrix whose shape defines the request's instance count.
    fn first(&self) -> Option<&Matrix> {
        match self {
            PendingInputs::Full(views) => views.first(),
            PendingInputs::View(m) => Some(m),
        }
    }

    /// Input matrix `v` of the request: view `v` of a full transform, or the single
    /// matrix (`v == 0`) of a `transform_view` request.
    fn part(&self, v: usize) -> &Matrix {
        match self {
            PendingInputs::Full(views) => &views[v],
            PendingInputs::View(m) => {
                debug_assert_eq!(v, 0, "single-view requests carry one matrix");
                m
            }
        }
    }
}

struct Pending {
    model: String,
    op: BatchOp,
    inputs: PendingInputs,
    /// Point past which the answer is dead: the engine replies
    /// [`ServeError::DeadlineExceeded`] instead of computing it.
    deadline: Option<Instant>,
    reply: ReplyCallback,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The pending queue plus the per-model admission census. Both live under one
/// mutex so a shed decision and the push it guards are atomic.
#[derive(Default)]
struct AdmissionQueue {
    q: VecDeque<Pending>,
    /// Queued request count per model name; entries are removed at zero so the
    /// census cannot outgrow the set of currently queued models.
    per_model: BTreeMap<String, usize>,
}

impl AdmissionQueue {
    fn push(&mut self, p: Pending) {
        *self.per_model.entry(p.model.clone()).or_insert(0) += 1;
        self.q.push_back(p);
    }

    fn note_removed(&mut self, model: &str) {
        if let Some(n) = self.per_model.get_mut(model) {
            *n -= 1;
            if *n == 0 {
                self.per_model.remove(model);
            }
        }
    }

    fn pop_front(&mut self) -> Option<Pending> {
        let p = self.q.pop_front()?;
        self.note_removed(&p.model);
        Some(p)
    }

    fn drain_all(&mut self) -> Vec<Pending> {
        self.per_model.clear();
        self.q.drain(..).collect()
    }
}

struct Shared {
    store: Arc<ModelStore>,
    config: BatchConfig,
    pool: Arc<Pool>,
    queue: Mutex<AdmissionQueue>,
    wake: Condvar,
    stop: AtomicBool,
    /// Behind its own `Arc` so pool jobs can record fallbacks after the dispatcher
    /// has moved on.
    stats: Arc<Mutex<EngineStats>>,
}

/// The micro-batching transform engine. Cheap to clone handles are not provided;
/// share it behind an [`Arc`].
pub struct BatchEngine {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl BatchEngine {
    /// Start the engine's dispatcher thread over a store, executing batches on the
    /// process-wide [`Pool::shared`].
    pub fn start(store: Arc<ModelStore>, config: BatchConfig) -> Self {
        Self::start_with_pool(store, config, Pool::shared())
    }

    /// Start the engine on a dedicated execution pool. A sharded router gives each
    /// in-process shard its own pool so one shard's heavy batch cannot starve its
    /// siblings' execution slots.
    pub fn start_with_pool(store: Arc<ModelStore>, config: BatchConfig, pool: Arc<Pool>) -> Self {
        let shared = Arc::new(Shared {
            store,
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                ..config
            },
            pool,
            queue: Mutex::new(AdmissionQueue::default()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: Arc::new(Mutex::new(EngineStats::default())),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tcca-batch-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the batch dispatcher")
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Enqueue an op, or fast-fail the callback without queueing. Admission
    /// control happens here: a request that would overflow the queue (or its
    /// model's share of it) is shed with [`ServeError::Overloaded`] *before* any
    /// work is spent on it, and a request whose deadline already passed is
    /// answered [`ServeError::DeadlineExceeded`] — in-band, never silently.
    fn enqueue(
        &self,
        model: &str,
        op: BatchOp,
        inputs: PendingInputs,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        // Resolve the name eagerly so unknown models fail fast with the catalog.
        if let Err(e) = self.shared.store.entry(model) {
            return reply(Err(e));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared
                .stats
                .lock()
                .expect("engine stats lock")
                .deadline_dropped += 1;
            return reply(Err(ServeError::DeadlineExceeded(
                "deadline passed before the request was admitted".into(),
            )));
        }
        {
            let mut queue = self.shared.queue.lock().expect("engine queue lock");
            // The stop check happens *under the queue lock*: the dispatcher drains
            // the queue under this lock before exiting, so a request either lands
            // in the queue in time to be failed by that drain, or observes the
            // flag here — it can never be pushed after the drain and stranded with
            // its callback forever uncalled.
            if self.shared.stop.load(Ordering::SeqCst) {
                drop(queue);
                return reply(Err(ServeError::EngineStopped));
            }
            let cfg = &self.shared.config;
            if cfg.max_queue > 0 && queue.q.len() >= cfg.max_queue {
                let depth = queue.q.len();
                drop(queue);
                self.shared
                    .stats
                    .lock()
                    .expect("engine stats lock")
                    .shed_queue_full += 1;
                return reply(Err(ServeError::Overloaded(format!(
                    "engine queue full ({depth} pending)"
                ))));
            }
            if cfg.max_per_model > 0
                && queue.per_model.get(model).copied().unwrap_or(0) >= cfg.max_per_model
            {
                let held = queue.per_model.get(model).copied().unwrap_or(0);
                drop(queue);
                self.shared
                    .stats
                    .lock()
                    .expect("engine stats lock")
                    .shed_model_limit += 1;
                return reply(Err(ServeError::Overloaded(format!(
                    "model {model:?} at its admission limit ({held} pending)"
                ))));
            }
            queue.push(Pending {
                model: model.to_string(),
                op,
                inputs,
                deadline,
                reply,
            });
            self.shared
                .stats
                .lock()
                .expect("engine stats lock")
                .requests += 1;
        }
        self.shared.wake.notify_one();
    }

    /// Asynchronously project instances through a stored model, transparently
    /// coalescing with concurrent requests for the same model. The callback runs
    /// when the result is ready — the submitting thread never blocks, which is what
    /// the event-loop server needs. The inputs are `Arc`-shared: the engine only
    /// ever borrows them. A `deadline` bounds how long the answer stays worth
    /// computing: work still queued past it is failed in-band instead of run.
    pub fn submit_transform(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        self.enqueue(
            model,
            BatchOp::Transform,
            PendingInputs::Full(inputs),
            deadline,
            reply,
        );
    }

    /// Asynchronously project a *single* view through the model's per-view
    /// projection. Concurrent single-view requests for the same `(model, view)`
    /// coalesce into one `transform_view` call that — for feature views — addresses
    /// every request's columns in place through a [`linalg::ColsView`]: no stitched
    /// copy, no per-view `hstack`, zero input copies.
    /// `precision` selects the arithmetic (v6): [`Precision::F32`] runs the
    /// projection through the model's cached `f32` shadow when one exists for
    /// this view, and silently falls back to the bit-exact `f64` path when it
    /// does not ([`EngineStats::f32_transforms`] reports which one ran).
    pub fn submit_transform_view(
        &self,
        model: &str,
        which: usize,
        input: Arc<Matrix>,
        precision: Precision,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        self.enqueue(
            model,
            BatchOp::View(which, precision),
            PendingInputs::View(input),
            deadline,
            reply,
        );
    }

    /// Asynchronously compute all named candidate outputs. Multi-candidate requests
    /// are comparatively rare and heterogeneous, so they skip the micro-batcher and
    /// run directly on the pool.
    pub fn submit_outputs(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: OutputsCallback,
    ) {
        if self.shared.stop.load(Ordering::SeqCst) {
            return reply(Err(ServeError::EngineStopped));
        }
        if let Err(e) = self.shared.store.entry(model) {
            return reply(Err(e));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared
                .stats
                .lock()
                .expect("engine stats lock")
                .deadline_dropped += 1;
            return reply(Err(ServeError::DeadlineExceeded(
                "deadline passed before the request was admitted".into(),
            )));
        }
        self.shared
            .stats
            .lock()
            .expect("engine stats lock")
            .requests += 1;
        let store = Arc::clone(&self.shared.store);
        let stats = Arc::clone(&self.shared.stats);
        let model = model.to_string();
        self.shared.pool.spawn(move || {
            // Re-check on the worker: the pool may have been backed up past the
            // budget, and a dead answer is not worth the model call.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                stats.lock().expect("engine stats lock").deadline_dropped += 1;
                return reply(Err(ServeError::DeadlineExceeded(
                    "deadline passed while queued for execution".into(),
                )));
            }
            let result = store
                .get(&model)
                .and_then(|m| named_outputs(m.as_ref(), &inputs));
            reply(result);
        });
    }

    /// Project instances through a stored model, transparently coalescing with
    /// concurrent requests for the same model. Blocks until the result is ready.
    /// (Do not call from a pool worker of this engine's own pool — batches execute
    /// there, and blocking a worker on its own queue can deadlock.)
    pub fn transform(&self, model: &str, inputs: Vec<Matrix>) -> Result<Matrix> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_transform(
            model,
            Arc::new(inputs),
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
        rx.recv().map_err(|_| ServeError::EngineStopped)?
    }

    /// Blocking counterpart of [`BatchEngine::submit_transform_view`], at the
    /// default `f64` precision.
    pub fn transform_view(&self, model: &str, which: usize, input: Matrix) -> Result<Matrix> {
        self.transform_view_precision(model, which, input, Precision::F64)
    }

    /// Blocking counterpart of [`BatchEngine::submit_transform_view`] with an
    /// explicit precision.
    pub fn transform_view_precision(
        &self,
        model: &str,
        which: usize,
        input: Matrix,
        precision: Precision,
    ) -> Result<Matrix> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_transform_view(
            model,
            which,
            Arc::new(input),
            precision,
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
        rx.recv().map_err(|_| ServeError::EngineStopped)?
    }

    /// Blocking counterpart of [`BatchEngine::submit_outputs`].
    pub fn outputs(&self, model: &str, inputs: Vec<Matrix>) -> Result<Vec<NamedOutput>> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit_outputs(
            model,
            Arc::new(inputs),
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
        rx.recv().map_err(|_| ServeError::EngineStopped)?
    }

    /// Requests currently queued (admitted but not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("engine queue lock").q.len()
    }

    /// Stop accepting work and fail queued requests with
    /// [`ServeError::EngineStopped`]. Used by the router to simulate/realize shard
    /// death; idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Whether [`BatchEngine::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Counters since start.
    pub fn stats(&self) -> EngineStats {
        *self.shared.stats.lock().expect("engine stats lock")
    }

    /// The store the engine serves from.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.shared.store
    }

    /// The pool batches execute on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.shared.pool
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Attach the model's labels to its candidates (positional fallback on mismatch).
fn named_outputs(model: &dyn MultiViewModel, inputs: &[Matrix]) -> Result<Vec<NamedOutput>> {
    let outputs = model.outputs(inputs)?;
    let labels = model.output_labels();
    let labelled = labels.len() == outputs.len();
    Ok(outputs
        .into_iter()
        .enumerate()
        .map(|(i, out)| {
            let label = if labelled {
                labels[i].clone()
            } else {
                format!("candidate{i}")
            };
            let (kind, matrix) = match out {
                Output::Embedding(m) => (CandidateKind::Embedding, m),
                Output::Distances(d) => (CandidateKind::Distances, d),
            };
            NamedOutput {
                label,
                kind,
                matrix,
            }
        })
        .collect())
}

/// Number of instances a request contributes, along the model's batching axis.
fn request_instances(kind: InputKind, inputs: &PendingInputs) -> usize {
    match (kind, inputs.first()) {
        (InputKind::Views, Some(m)) => m.cols(),
        (InputKind::Kernels, Some(m)) => m.rows(),
        (_, None) => 0,
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        // Wait for the first request of the next batch. On stop, fail everything
        // still queued with `EngineStopped` *under the queue lock* (paired with the
        // in-lock stop check in `enqueue`) so no callback is ever stranded.
        let first = {
            let mut queue = shared.queue.lock().expect("engine queue lock");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    let drained = queue.drain_all();
                    drop(queue);
                    for pending in drained {
                        (pending.reply)(Err(ServeError::EngineStopped));
                    }
                    return;
                }
                if let Some(p) = queue.pop_front() {
                    break p;
                }
                queue = shared.wake.wait(queue).expect("engine queue lock");
            }
        };

        // A request whose deadline passed while queued must not open a batch
        // window (the window would make *later* requests late too). Answer it
        // in-band and move on.
        if first.expired(Instant::now()) {
            shared
                .stats
                .lock()
                .expect("engine stats lock")
                .deadline_dropped += 1;
            (first.reply)(Err(ServeError::DeadlineExceeded(
                "deadline passed while queued for dispatch".into(),
            )));
            continue;
        }

        // The batching axis comes from the header metadata alone — a *cold* model's
        // payload is deserialized inside the pool job below, never on the
        // dispatcher thread, so a slow first load of one model cannot head-of-line
        // block batching for every other model.
        let kind = match shared.store.entry(&first.model) {
            Ok(entry) => entry.meta().input_kind,
            Err(e) => {
                (first.reply)(Err(e));
                continue;
            }
        };

        // Absorb same-(model, op) requests until the batch is full or the window
        // closes.
        let mut batch = vec![first];
        let mut instances = request_instances(kind, &batch[0].inputs);
        let deadline = Instant::now() + shared.config.max_wait;
        {
            let mut queue = shared.queue.lock().expect("engine queue lock");
            loop {
                while instances < shared.config.max_batch {
                    let next = queue
                        .q
                        .iter()
                        .position(|p| p.model == batch[0].model && p.op == batch[0].op)
                        .and_then(|i| queue.q.remove(i));
                    match next {
                        Some(p) => {
                            queue.note_removed(&p.model);
                            instances += request_instances(kind, &p.inputs);
                            batch.push(p);
                        }
                        None => break,
                    }
                }
                if instances >= shared.config.max_batch || shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                // Woken by a new request or the window closing; the next loop
                // iteration sweeps the queue again either way.
                let (q, _timeout) = shared
                    .wake
                    .wait_timeout(queue, deadline - now)
                    .expect("engine queue lock");
                queue = q;
            }
        }

        // Execute asynchronously on the engine's pool; the dispatcher moves on.
        {
            let mut stats = shared.stats.lock().expect("engine stats lock");
            stats.batches += 1;
            if batch.len() > 1 {
                stats.coalesced_requests += batch.len();
            }
        }
        let stats = Arc::clone(&shared.stats);
        let store = Arc::clone(&shared.store);
        shared
            .pool
            .spawn(move || execute_batch(&store, kind, batch, &stats));
    }
}

/// Project the columns through a view's `f32` shadow: the narrowed factors were
/// cached at shadow build time, so a request only pays the one `f32` GEMM (plus
/// narrowing its own input columns inside the pack). Accuracy is governed by the
/// tolerance contract on [`ColsView::shifted_t_matmul_f32`].
fn run_view_f32(shadow: &ViewShadowF32, cols: &ColsView<'_>) -> Result<Matrix> {
    cols.shifted_t_matmul_f32(shadow.shift.as_deref(), &shadow.weights)
        .map_err(|e| ServeError::from(mvcore::CoreError::from(e)))
}

/// Run one request alone (the singleton-bypass and fallback path): the model reads
/// the borrowed `Arc`'d input directly — no stitch, no copy. `f32_view` is the
/// shadow to project through when the request asked for (and the model supports)
/// the `f32` path.
fn run_single(
    model: &dyn MultiViewModel,
    op: BatchOp,
    inputs: &PendingInputs,
    f32_view: Option<&ViewShadowF32>,
) -> Result<Matrix> {
    match (op, inputs) {
        (BatchOp::Transform, PendingInputs::Full(views)) => {
            model.transform(views).map_err(ServeError::from)
        }
        (BatchOp::View(v, _), PendingInputs::View(input)) => match f32_view {
            Some(shadow) => {
                let cols = ColsView::from_matrices(std::iter::once(&**input))
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                run_view_f32(shadow, &cols)
            }
            None => model.transform_view(v, input).map_err(ServeError::from),
        },
        _ => Err(ServeError::Protocol(
            "request inputs do not match its operation".into(),
        )),
    }
}

fn execute_batch(
    store: &ModelStore,
    kind: InputKind,
    batch: Vec<Pending>,
    stats: &Arc<Mutex<EngineStats>>,
) {
    // Deadlines are re-checked at execution: the pool may be backed up, and a
    // batch member whose budget ran out while waiting gets an in-band
    // DeadlineExceeded instead of a dead answer (its neighbours still run).
    let now = Instant::now();
    let (batch, expired): (Vec<Pending>, Vec<Pending>) =
        batch.into_iter().partition(|p| !p.expired(now));
    if !expired.is_empty() {
        stats.lock().expect("engine stats lock").deadline_dropped += expired.len();
        for pending in expired {
            (pending.reply)(Err(ServeError::DeadlineExceeded(
                "deadline passed while queued for execution".into(),
            )));
        }
    }
    if batch.is_empty() {
        return;
    }
    let model: Arc<dyn MultiViewModel> = match store.get(&batch[0].model) {
        Ok(m) => m,
        Err(e) => {
            // ServeError is not Clone (it can wrap io::Error); forward the load
            // failure to every waiter as a persistence error message.
            let msg = e.to_string();
            for pending in batch {
                (pending.reply)(Err(mvcore::CoreError::Persist(msg.clone()).into()));
            }
            return;
        }
    };
    // Resolve the f32 shadow once per batch (every member shares the batch key,
    // so one resolution covers them all). Only feature views have a projection
    // to narrow; an F32 request the model cannot shadow falls back to f64.
    let shadow = match batch[0].op {
        BatchOp::View(_, Precision::F32) if kind == InputKind::Views => {
            store.f32_shadow(&batch[0].model).ok()
        }
        _ => None,
    };
    let f32_view = match batch[0].op {
        BatchOp::View(which, _) => shadow.as_deref().and_then(|s| s.view(which)),
        BatchOp::Transform => None,
    };
    if f32_view.is_some() {
        stats.lock().expect("engine stats lock").f32_transforms += batch.len();
    }
    if batch.len() == 1 {
        // Singleton bypass: the coalescing path (and any stitching it might do) is
        // skipped entirely — the model reads the request's own matrices in place.
        stats.lock().expect("engine stats lock").singleton_batches += 1;
        let Pending {
            op, inputs, reply, ..
        } = batch.into_iter().next().expect("one request");
        reply(run_single(model.as_ref(), op, &inputs, f32_view));
        return;
    }

    // A View batch over feature views *attempts* the ColsView path, but a model
    // that does not override `transform_view_cols` still stitches in the default
    // impl — so the batch only counts as zero-copy if the process-wide stitch
    // counter did not move while it ran. (Under concurrent stitching elsewhere
    // this can undercount, never overcount: the stat stays honest.)
    let view_batch = matches!(batch[0].op, BatchOp::View(..)) && kind == InputKind::Views;
    let stitches_before = linalg::input_stitches();
    match run_coalesced(model.as_ref(), kind, &batch, f32_view) {
        Ok(embeddings) => {
            if view_batch && linalg::input_stitches() == stitches_before {
                stats.lock().expect("engine stats lock").zero_copy_batches += 1;
            }
            for (pending, z) in batch.into_iter().zip(embeddings) {
                (pending.reply)(Ok(z));
            }
        }
        Err(_) => {
            // One bad (or transductive) request must not fail its neighbours: retry
            // individually.
            stats.lock().expect("engine stats lock").fallbacks += 1;
            for pending in batch {
                let result = run_single(model.as_ref(), pending.op, &pending.inputs, f32_view);
                (pending.reply)(result);
            }
        }
    }
}

/// Concatenate view `v` of every request along the instance axis into one
/// preallocated matrix (columns for feature views, rows for kernel blocks). Each
/// request's block is copied exactly once — no repeated pairwise `hstack`/`vstack`
/// whose data movement would grow quadratically with the batch size. Every call
/// materializes request data, so it counts against [`linalg::input_stitches`].
fn stitch_view(kind: InputKind, batch: &[Pending], v: usize) -> Result<Matrix> {
    linalg::note_input_stitch();
    let shape_err = |what: String| ServeError::Protocol(what);
    let head = batch[0].inputs.part(v);
    match kind {
        InputKind::Views => {
            let d = head.rows();
            let mut total = 0usize;
            for p in batch {
                let part = p.inputs.part(v);
                if part.rows() != d {
                    return Err(shape_err(format!(
                        "view {v}: request has {} features, batch peer has {d}",
                        part.rows()
                    )));
                }
                total += part.cols();
            }
            let mut out = Matrix::zeros(d, total);
            let mut col = 0usize;
            for p in batch {
                let part = p.inputs.part(v);
                for i in 0..d {
                    out.row_mut(i)[col..col + part.cols()].copy_from_slice(part.row(i));
                }
                col += part.cols();
            }
            Ok(out)
        }
        InputKind::Kernels => {
            let n = head.cols();
            let mut total = 0usize;
            for p in batch {
                let part = p.inputs.part(v);
                if part.cols() != n {
                    return Err(shape_err(format!(
                        "kernel block {v}: request has {} columns, batch peer has {n}",
                        part.cols()
                    )));
                }
                total += part.rows();
            }
            let mut out = Matrix::zeros(total, n);
            let mut row = 0usize;
            for p in batch {
                let part = p.inputs.part(v);
                out.as_mut_slice()[row * n..row * n + part.as_slice().len()]
                    .copy_from_slice(part.as_slice());
                row += part.rows();
            }
            Ok(out)
        }
    }
}

/// Join the batch along the instance axis, run one model call, split the rows.
///
/// * [`BatchOp::View`] over feature views is the zero-copy path: the requests'
///   matrices become the parts of a borrowed [`ColsView`] and the model's blocked
///   GEMM packs straight from them — bit-identical to the stitched path, with no
///   input copy at all.
/// * [`BatchOp::Transform`] stitches every view; [`BatchOp::View`] over kernel
///   blocks stitches the one block row-wise (kernel models need the contiguous
///   block). Both count against [`linalg::input_stitches`].
fn run_coalesced(
    model: &dyn MultiViewModel,
    kind: InputKind,
    batch: &[Pending],
    f32_view: Option<&ViewShadowF32>,
) -> Result<Vec<Matrix>> {
    let z = match batch[0].op {
        BatchOp::Transform => {
            let views = model.num_views();
            for p in batch {
                let PendingInputs::Full(inputs) = &p.inputs else {
                    return Err(ServeError::Protocol(
                        "full-transform batch holds a single-view request".into(),
                    ));
                };
                if inputs.len() != views {
                    return Err(ServeError::Protocol(format!(
                        "request has {} inputs, model expects {views}",
                        inputs.len()
                    )));
                }
            }
            let mut stitched = Vec::with_capacity(views);
            for v in 0..views {
                stitched.push(stitch_view(kind, batch, v)?);
            }
            model.transform(&stitched)?
        }
        BatchOp::View(which, _) => match kind {
            InputKind::Views => {
                let cols = ColsView::from_matrices(batch.iter().map(|p| p.inputs.part(0)))
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                match f32_view {
                    // The f32 fast path is zero-copy by the same construction
                    // as the f64 one: the shadow's GEMM packs straight from the
                    // borrowed request columns.
                    Some(shadow) => run_view_f32(shadow, &cols)?,
                    None => model.transform_view_cols(which, &cols)?,
                }
            }
            InputKind::Kernels => model.transform_view(which, &stitch_view(kind, batch, 0)?)?,
        },
    };

    let mut out = Vec::with_capacity(batch.len());
    let mut row = 0usize;
    for p in batch {
        let n = request_instances(kind, &p.inputs);
        if row + n > z.rows() {
            return Err(ServeError::Protocol(format!(
                "batched embedding has {} rows, expected at least {}",
                z.rows(),
                row + n
            )));
        }
        out.push(z.select_rows(&(row..row + n).collect::<Vec<_>>()));
        row += n;
    }
    if row != z.rows() {
        return Err(ServeError::Protocol(format!(
            "batched embedding has {} rows, requests account for {row}",
            z.rows()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{secstr_dataset, SecStrConfig};
    use mvcore::{EstimatorRegistry, FitSpec};

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 32,
            seed: 17,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn engine_with(name: &str, method: &str, views: &[Matrix]) -> BatchEngine {
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit(method, views, &FitSpec::with_rank(2).seed(2))
            .unwrap();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert(name, model);
        BatchEngine::start(
            store,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(20),
                ..BatchConfig::default()
            },
        )
    }

    /// Two fast PCA models behind one engine with the given admission config.
    fn two_model_engine(config: BatchConfig) -> (BatchEngine, Vec<Matrix>) {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        for name in ["a", "b"] {
            let model = registry
                .fit("PCA", &views, &FitSpec::with_rank(2).seed(2))
                .unwrap();
            store.insert(name, model);
        }
        (BatchEngine::start(store, config), views)
    }

    /// Wait until the dispatcher has drained the queue (popped everything into
    /// an open batch window or onto the pool).
    fn wait_queue_empty(engine: &BatchEngine) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.queue_depth() > 0 {
            assert!(Instant::now() < deadline, "queue never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn single_requests_match_direct_transform() {
        let views = fixture_views();
        let engine = engine_with("tcca", "TCCA", &views);
        let direct = engine
            .store()
            .get("tcca")
            .unwrap()
            .transform(&views)
            .unwrap();
        let served = engine.transform("tcca", views.clone()).unwrap();
        assert_eq!(served, direct);
        assert!(matches!(
            engine.transform("missing", views),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn concurrent_requests_coalesce_and_split_correctly() {
        let views = fixture_views();
        let engine = Arc::new(engine_with("pca", "PCA", &views));
        let direct = engine
            .store()
            .get("pca")
            .unwrap()
            .transform(&views)
            .unwrap();

        // 8 clients each asking for a distinct 4-instance slice.
        let mut handles = Vec::new();
        for c in 0..8usize {
            let engine = Arc::clone(&engine);
            let slice: Vec<Matrix> = views
                .iter()
                .map(|v| v.select_columns(&(4 * c..4 * (c + 1)).collect::<Vec<_>>()))
                .collect();
            handles.push(std::thread::spawn(move || {
                (c, engine.transform("pca", slice).unwrap())
            }));
        }
        for h in handles {
            let (c, z) = h.join().unwrap();
            let expected = direct.select_rows(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
            assert_eq!(z, expected, "client {c}");
        }

        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches <= stats.requests,
            "batches {} > requests {}",
            stats.batches,
            stats.requests
        );
    }

    #[test]
    fn transductive_batches_fall_back_to_individual_execution() {
        let views = fixture_views();
        let engine = Arc::new(engine_with("dse", "DSE", &views));
        // Two concurrent requests for the exact training batch: coalescing doubles
        // the instance count, the fingerprint check rejects it, and the fallback
        // serves both individually.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let inputs = views.clone();
            handles.push(std::thread::spawn(move || {
                engine.transform("dse", inputs).unwrap()
            }));
        }
        let results: Vec<Matrix> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].rows(), 32);
    }

    #[test]
    fn concurrent_single_view_requests_coalesce_without_full_stitch() {
        let views = fixture_views();
        let engine = Arc::new(engine_with("ccals", "CCA-LS", &views));
        let model = engine.store().get("ccals").unwrap();
        let direct = model.transform_view(1, &views[1]).unwrap();

        // 8 clients each projecting a distinct 4-instance slice of view 1 only.
        let mut handles = Vec::new();
        for c in 0..8usize {
            let engine = Arc::clone(&engine);
            let slice = views[1].select_columns(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
            handles.push(std::thread::spawn(move || {
                (c, engine.transform_view("ccals", 1, slice).unwrap())
            }));
        }
        for h in handles {
            let (c, z) = h.join().unwrap();
            let expected = direct.select_rows(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
            assert_eq!(z, expected, "client {c}");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(stats.batches <= stats.requests);

        // Full-transform and single-view requests never coalesce with each other:
        // a full transform interleaved with view requests still matches direct.
        let full = engine.transform("ccals", views.clone()).unwrap();
        assert_eq!(full, model.transform(&views).unwrap());

        // Out-of-range view indexes fail in-band.
        let err = engine
            .transform_view("ccals", 99, views[0].clone())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn f32_precision_tracks_f64_within_tolerance_and_counts() {
        let views = fixture_views();
        let engine = engine_with("pca", "PCA", &views);
        let baseline = engine.transform_view("pca", 0, views[0].clone()).unwrap();
        let fast = engine
            .transform_view_precision("pca", 0, views[0].clone(), Precision::F32)
            .unwrap();
        assert_eq!(
            (fast.rows(), fast.cols()),
            (baseline.rows(), baseline.cols())
        );
        // The documented contract of the f32 path: relative error within
        // 4·k·ε₃₂ of the f64 answer (k = features of the view).
        let tol = 4.0 * views[0].rows() as f64 * f64::from(f32::EPSILON);
        for (a, b) in fast.as_slice().iter().zip(baseline.as_slice()) {
            assert!(
                (a - b).abs() <= tol * b.abs().max(1.0),
                "f32 path drifted: {a} vs {b} (tol {tol})"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.f32_transforms, 1, "only the F32 request counts");

        // A model without a linear per-view projection silently serves the
        // bit-exact f64 path on an F32 request — same answer, no counter.
        let views2 = fixture_views();
        let engine2 = engine_with("cat", "CAT", &views2);
        let f64_z = engine2.transform_view("cat", 0, views2[0].clone()).unwrap();
        let f32_z = engine2
            .transform_view_precision("cat", 0, views2[0].clone(), Precision::F32)
            .unwrap();
        assert_eq!(f32_z, f64_z, "fallback must be bit-exact f64");
        assert_eq!(engine2.stats().f32_transforms, 0);
    }

    #[test]
    fn outputs_are_served_with_model_labels() {
        let views = fixture_views();
        let engine = engine_with("bsf", "BSF", &views);
        let outputs = engine.outputs("bsf", views.clone()).unwrap();
        assert_eq!(outputs.len(), views.len());
        for (p, candidate) in outputs.iter().enumerate() {
            assert_eq!(candidate.label, format!("view{p}"));
            assert_eq!(candidate.kind, crate::wire::CandidateKind::Embedding);
            assert_eq!(candidate.matrix.rows(), views[p].cols());
        }
        // BSF rejects plain transform by design — but outputs() serves it.
        assert!(engine.transform("bsf", views).is_err());
    }

    #[test]
    fn stopped_engine_fails_fast() {
        let views = fixture_views();
        let engine = engine_with("pca2", "PCA", &views);
        engine.stop();
        assert!(matches!(
            engine.transform("pca2", views.clone()),
            Err(ServeError::EngineStopped)
        ));
        assert!(matches!(
            engine.outputs("pca2", views),
            Err(ServeError::EngineStopped)
        ));
        assert!(engine.is_stopped());
    }

    #[test]
    fn stopped_engine_rejects_new_requests() {
        let views = fixture_views();
        let engine = engine_with("cat", "CAT", &views);
        drop(engine);
        // A fresh engine whose store lacks the model reports the catalog.
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        let engine = BatchEngine::start(store, BatchConfig::default());
        let err = engine.transform("cat", views).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));
    }

    #[test]
    fn per_model_cap_sheds_the_hot_tenant_in_band() {
        // A long batch window for model "a" holds the dispatcher while "b"
        // requests pile up in the queue; the per-model cap bounds the pile.
        let (engine, views) = two_model_engine(BatchConfig {
            max_batch: 10_000,
            max_wait: Duration::from_millis(400),
            max_queue: 0,
            max_per_model: 2,
        });
        let inputs = Arc::new(views.clone());
        let (tx, rx) = std::sync::mpsc::channel();
        let submit = |model: &str| {
            let tx = tx.clone();
            engine.submit_transform(
                model,
                Arc::clone(&inputs),
                None,
                Box::new(move |r| drop(tx.send(r))),
            );
        };
        submit("a"); // opens the window
        for _ in 0..5 {
            submit("b"); // 2 admitted, 3 shed
        }
        drop(tx);
        let results: Vec<_> = rx.iter().collect();
        assert_eq!(results.len(), 6, "every request must get exactly one reply");
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded(_))))
            .count();
        assert_eq!(
            (ok, shed),
            (3, 3),
            "sheds must be typed, not generic errors"
        );
        assert_eq!(engine.stats().shed_model_limit, 3);
        assert_eq!(engine.stats().shed_queue_full, 0);
    }

    #[test]
    fn full_queue_sheds_in_band() {
        let (engine, views) = two_model_engine(BatchConfig {
            max_batch: 10_000,
            max_wait: Duration::from_millis(400),
            max_queue: 3,
            max_per_model: 0,
        });
        let inputs = Arc::new(views.clone());
        let (tx, rx) = std::sync::mpsc::channel();
        let submit = |model: &str| {
            let tx = tx.clone();
            engine.submit_transform(
                model,
                Arc::clone(&inputs),
                None,
                Box::new(move |r| drop(tx.send(r))),
            );
        };
        submit("a");
        wait_queue_empty(&engine); // "a" popped: its batch window is open
        for _ in 0..5 {
            submit("b"); // 3 fill the queue, 2 shed
        }
        drop(tx);
        let results: Vec<_> = rx.iter().collect();
        assert_eq!(results.len(), 6);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded(_))))
            .count();
        assert_eq!((ok, shed), (4, 2));
        assert_eq!(engine.stats().shed_queue_full, 2);
    }

    #[test]
    fn expired_deadlines_are_failed_in_band_never_computed() {
        let (engine, views) = two_model_engine(BatchConfig::default());
        let inputs = Arc::new(views.clone());

        // Already expired at submission: rejected synchronously.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        engine.submit_transform(
            "a",
            Arc::clone(&inputs),
            Some(Instant::now()),
            Box::new(move |r| drop(tx.send(r))),
        );
        assert!(matches!(
            rx.recv().unwrap(),
            Err(ServeError::DeadlineExceeded(_))
        ));

        // Same for the outputs path.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        engine.submit_outputs(
            "a",
            Arc::clone(&inputs),
            Some(Instant::now()),
            Box::new(move |r| drop(tx.send(r))),
        );
        assert!(matches!(
            rx.recv().unwrap(),
            Err(ServeError::DeadlineExceeded(_))
        ));
        assert_eq!(engine.stats().deadline_dropped, 2);

        // A generous deadline still computes normally.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        engine.submit_transform(
            "a",
            Arc::clone(&inputs),
            Some(Instant::now() + Duration::from_secs(30)),
            Box::new(move |r| drop(tx.send(r))),
        );
        assert!(rx.recv().unwrap().is_ok());
    }

    #[test]
    fn deadline_expiring_in_queue_is_dropped_at_dispatch() {
        // "a" holds the dispatcher's batch window open longer than "b"'s
        // budget; when "b" is finally popped its deadline has passed.
        let (engine, views) = two_model_engine(BatchConfig {
            max_batch: 10_000,
            max_wait: Duration::from_millis(300),
            ..BatchConfig::default()
        });
        let inputs = Arc::new(views.clone());
        let (tx_a, rx_a) = std::sync::mpsc::sync_channel(1);
        engine.submit_transform(
            "a",
            Arc::clone(&inputs),
            None,
            Box::new(move |r| drop(tx_a.send(r))),
        );
        wait_queue_empty(&engine);
        let (tx_b, rx_b) = std::sync::mpsc::sync_channel(1);
        engine.submit_transform(
            "b",
            Arc::clone(&inputs),
            Some(Instant::now() + Duration::from_millis(30)),
            Box::new(move |r| drop(tx_b.send(r))),
        );
        assert!(rx_a.recv().unwrap().is_ok(), "the window holder succeeds");
        assert!(matches!(
            rx_b.recv().unwrap(),
            Err(ServeError::DeadlineExceeded(_))
        ));
        assert!(engine.stats().deadline_dropped >= 1);
    }
}
