//! [`Router`] — shard requests by model name across N serving workers.
//!
//! The router owns a set of **shards**, each one a worker that can answer the full
//! transform surface:
//!
//! * **local** shards — an in-process [`BatchEngine`] over its own [`ModelStore`]
//!   and its own execution [`Pool`], so one shard's heavy batch never starves a
//!   sibling's workers;
//! * **remote** shards — a child process (or any host) speaking the existing frame
//!   protocol, reached through a small pooled-connection [`Client`] set.
//!
//! ## Placement: rendezvous hashing with replication
//!
//! Each request's model name is scored against every shard with rendezvous
//! (highest-random-weight) hashing; the `replication` highest-scoring live shards
//! form the model's **replica set**. Requests rotate round-robin inside the replica
//! set, so a hot model's payload ends up resident on several shards and its traffic
//! spreads — while cold models stay resident on few shards (payload budgets evict
//! what a shard stops seeing). Adding or removing a shard only remaps the models
//! whose top-scoring shard changed — no global reshuffle.
//!
//! ## Failover, retry budgets and deadlines
//!
//! Failover policy is driven by the error taxonomy ([`crate::ErrorClass`]): a
//! **transport** failure (dead socket, stopped engine, protocol corruption)
//! marks the shard dead and re-submits the request to the next candidate; an
//! **overload** verdict fails over *without* marking the shard dead (it is
//! healthy, just full); **terminal** errors (unknown model, shape mismatch,
//! deadline exceeded) are never retried — they would fail identically
//! everywhere. Retries pay from a per-shard **retry budget** (a token bucket
//! refilled by successes), so a stack-wide outage degrades into fast failures
//! instead of a retry storm, and each retry waits out an exponential backoff
//! with seeded deterministic jitter. A request carrying a deadline is dropped
//! the moment it expires, and the *remaining* budget is re-encoded onto the
//! wire for remote shards.
//!
//! ## The live control plane (protocol v5)
//!
//! The shard table is **dynamic**: [`Router::add_shard`] validates a new remote
//! shard (fresh connect + ping) and admits it under a fresh stable id —
//! rendezvous hashing then remaps only the models whose top-scoring shard
//! changed, so admission is an incremental rebalance, not a reshuffle.
//! [`Router::remove_shard`] **drains before removing**: the shard stops
//! receiving new requests (it leaves every candidate list) while in-flight
//! work on it runs to completion; only then does it leave the table (and a
//! local shard's engine stops). Requests never drop across the transition —
//! anything still racing the removal fails over through the normal transport
//! path. The health probe walks the *current* table each pass, so shards added
//! at runtime are probed and removed ones are forgotten.

use crate::batch::{OutputsCallback, ReplyCallback};
use crate::faults::splitmix64;
use crate::service::{store_catalog, TransformService};
use crate::wire::{ModelInfo, NamedOutput, Precision, RescanReport, ShardInfo};
use crate::{BatchConfig, BatchEngine, Client, ErrorClass, ModelStore, Result, ServeError};
use linalg::Matrix;
use mvcore::EstimatorRegistry;
use parallel::Pool;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Router knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Size of each model's replica set (clamped to the live shard count).
    pub replication: usize,
    /// Pooled connections kept per remote shard.
    pub connections_per_shard: usize,
    /// Deadline on remote-shard connects, reads and writes. A shard that hangs
    /// (rather than erroring) surfaces as an I/O failure after this long and
    /// fails over, instead of wedging an I/O worker forever. Generous by default:
    /// it must exceed the slowest legitimate batched transform. A request-level
    /// deadline shortens individual attempts below this.
    pub remote_timeout: std::time::Duration,
    /// How often a background probe re-dials shards marked dead. A remote shard
    /// that answers a fresh connect + ping (a restarted child process), or a local
    /// shard whose engine is still running (a failover false positive), returns to
    /// rotation. `Duration::ZERO` disables the probe thread.
    pub probe_interval: std::time::Duration,
    /// Base delay before the first retry; attempt `k` waits up to
    /// `retry_base * 2^k` (capped by [`RouterConfig::retry_max`]), jittered
    /// down to at least half. `Duration::ZERO` retries immediately.
    pub retry_base: std::time::Duration,
    /// Cap on any single retry backoff.
    pub retry_max: std::time::Duration,
    /// Seed for the deterministic backoff jitter — a seeded run replays the
    /// same jitter sequence.
    pub retry_seed: u64,
    /// Per-shard retry budget: a bucket that starts with this many retries and
    /// earns back one retry per eight successes, so retries stay a bounded
    /// fraction of real traffic under sustained failure. `0` disables the
    /// budget (every failover may retry).
    pub retry_budget: u32,
    /// How long [`Router::remove_shard`] waits for in-flight work on the
    /// draining shard to complete before removing it anyway. Work still racing
    /// past the timeout fails over through the normal transport path.
    pub drain_timeout: std::time::Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            replication: 2,
            connections_per_shard: 4,
            remote_timeout: std::time::Duration::from_secs(30),
            probe_interval: std::time::Duration::from_secs(1),
            retry_base: std::time::Duration::from_millis(10),
            retry_max: std::time::Duration::from_millis(500),
            retry_seed: 0,
            retry_budget: 16,
            drain_timeout: std::time::Duration::from_secs(5),
        }
    }
}

/// Counters for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests routed to each shard (by shard id).
    pub routed: Vec<usize>,
    /// Requests re-submitted to another shard after a shard failure.
    pub failovers: usize,
    /// Dead shards returned to rotation by the health probe.
    pub revivals: usize,
    /// Failovers denied because the next shard's retry budget was exhausted.
    pub retries_denied: usize,
    /// Requests dropped because their deadline expired before (or between)
    /// attempts.
    pub deadline_drops: usize,
    /// Control-plane operations served (cluster info, shard add, shard remove).
    pub control_ops: usize,
}

/// A per-shard retry token bucket, scaled so a success refills a *fraction* of
/// a retry: starting balance `budget` retries, each retry spends one, each
/// success earns back an eighth — under sustained failure, retries converge to
/// at most one per eight successful requests instead of amplifying the outage.
struct RetryBudget {
    /// Balance in eighths of a retry.
    balance: AtomicI64,
    /// Cap in eighths; `0` disables accounting entirely.
    max: i64,
}

impl RetryBudget {
    const RETRY_COST: i64 = 8;

    fn new(budget: u32) -> Self {
        let max = i64::from(budget) * Self::RETRY_COST;
        Self {
            balance: AtomicI64::new(max),
            max,
        }
    }

    /// Spend one retry; `false` (and no state change) when the bucket is dry.
    fn try_spend(&self) -> bool {
        if self.max == 0 {
            return true;
        }
        let prev = self.balance.fetch_sub(Self::RETRY_COST, Ordering::Relaxed);
        if prev < Self::RETRY_COST {
            self.balance.fetch_add(Self::RETRY_COST, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// A success earns back an eighth of a retry, up to the cap.
    fn refill(&self) {
        if self.max == 0 {
            return;
        }
        let prev = self.balance.fetch_add(1, Ordering::Relaxed);
        if prev >= self.max {
            self.balance.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

enum Backend {
    Local {
        engine: Arc<BatchEngine>,
    },
    Remote {
        addr: String,
        conns: Mutex<Vec<Client>>,
    },
}

/// One serving worker owned by the router.
pub struct Shard {
    id: usize,
    label: String,
    backend: Backend,
    alive: AtomicBool,
    /// Draining shards take no new work (they leave every candidate list) but
    /// finish what they hold — the first half of drain-before-remove.
    draining: AtomicBool,
    /// Requests currently executing on this shard; a drain completes when it
    /// reaches zero.
    inflight: AtomicU64,
    retry: RetryBudget,
}

impl Shard {
    /// Stable shard id (never reused within one router's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Human-readable identity: `local-N` or the remote address.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the shard is still considered servable.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Whether the shard is draining ahead of removal.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests currently executing on this shard.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Whether this shard takes new work.
    fn accepts_work(&self) -> bool {
        self.is_alive() && !self.is_draining()
    }
}

struct Inner {
    /// The dynamic shard table. Reads (routing, probing, stats) take the read
    /// lock for a snapshot; only control-plane add/remove take the write lock.
    shards: RwLock<Vec<Arc<Shard>>>,
    /// Next id handed to an admitted shard — ids are stable and never reused.
    next_shard_id: AtomicUsize,
    replication: usize,
    connections_per_shard: usize,
    remote_timeout: std::time::Duration,
    drain_timeout: Duration,
    retry_base: Duration,
    retry_max: Duration,
    retry_seed: u64,
    /// Sequence counter feeding the deterministic backoff jitter.
    backoff_seq: AtomicU64,
    /// Executes blocking remote-shard I/O so callers (the event loop!) never wait
    /// on a socket. Sized by the shard count, independent of the kernel pools.
    io_pool: Pool,
    /// Round-robin cursor rotating requests inside a replica set.
    rr: AtomicUsize,
    stats: Mutex<RouterStats>,
}

impl Inner {
    /// A point-in-time copy of the shard table (cheap: clones the `Arc`s).
    fn snapshot(&self) -> Vec<Arc<Shard>> {
        self.shards.read().expect("shard table lock").clone()
    }

    /// Look up a shard by stable id, if it is still in the table.
    fn shard(&self, id: usize) -> Option<Arc<Shard>> {
        self.shards
            .read()
            .expect("shard table lock")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Count a request routed to shard `sid` (the stats vector grows with the
    /// id space — ids of removed shards keep their history).
    fn note_routed(&self, sid: usize) {
        let mut stats = self.stats.lock().expect("router stats lock");
        if stats.routed.len() <= sid {
            stats.routed.resize(sid + 1, 0);
        }
        stats.routed[sid] += 1;
    }
    /// The backoff before retry attempt `k` (0-based): exponential in `k`,
    /// capped, then jittered into `[1/2, 1)` of the cap by a seeded hash —
    /// deterministic for a given `retry_seed` and retry sequence, but spread
    /// enough that synchronized failures don't retry in lockstep.
    fn backoff(&self, k: usize) -> Duration {
        if self.retry_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .retry_base
            .saturating_mul(1u32 << k.min(16) as u32)
            .min(self.retry_max);
        let n = self.backoff_seq.fetch_add(1, Ordering::Relaxed);
        let roll = splitmix64(self.retry_seed ^ n) % 500;
        exp.mul_f64(0.5 + roll as f64 / 1000.0)
    }
}

/// A sharded serving tier implementing [`TransformService`] — drop it behind a
/// [`crate::Server`] and the wire protocol fans out over all shards.
pub struct Router {
    inner: Arc<Inner>,
}

/// 64-bit FNV-1a over the model name and shard id — the rendezvous score.
fn rendezvous_score(model: &str, shard_id: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in model.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in (shard_id as u64).to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors that implicate the *shard* (not the request): worth marking it dead.
/// Defined by the crate-wide taxonomy, not ad-hoc matching.
fn is_shard_failure(e: &ServeError) -> bool {
    e.class() == ErrorClass::Transport
}

/// One shard description held until [`RouterBuilder::build`] (local engines are
/// created at build time, when the shard count — and so each shard's fair slice
/// of the thread budget — is known).
enum PendingShard {
    Local {
        store: Arc<ModelStore>,
        batch: BatchConfig,
    },
    Remote {
        addr: String,
    },
}

/// Builder for a router: add shards, then [`RouterBuilder::build`].
pub struct RouterBuilder {
    config: RouterConfig,
    pending: Vec<PendingShard>,
}

impl RouterBuilder {
    /// Start an empty router description.
    pub fn new(config: RouterConfig) -> Self {
        Self {
            config,
            pending: Vec::new(),
        }
    }

    /// Add an in-process shard serving `store` with its own batch engine and its
    /// own execution pool (one pool per shard — the "pool handle per shard" that
    /// keeps shards from contending for execution slots). The machine's thread
    /// budget ([`parallel::max_threads`]) is divided across the local shards at
    /// build time, so an N-shard router does not oversubscribe the CPU N-fold.
    pub fn local_shard(mut self, store: Arc<ModelStore>, batch: BatchConfig) -> Self {
        self.pending.push(PendingShard::Local { store, batch });
        self
    }

    /// Add a remote shard reached over TCP at `addr` (a `tcca_serve serve` child
    /// process or any wire-protocol speaker).
    pub fn remote_shard(mut self, addr: impl Into<String>) -> Self {
        self.pending
            .push(PendingShard::Remote { addr: addr.into() });
        self
    }

    /// Finish: the shard set is fixed from here on.
    pub fn build(self) -> Router {
        let n = self.pending.len();
        let locals = self
            .pending
            .iter()
            .filter(|p| matches!(p, PendingShard::Local { .. }))
            .count();
        let workers_per_shard = (parallel::max_threads() / locals.max(1)).max(1);
        let retry_budget = self.config.retry_budget;
        let shards: Vec<Arc<Shard>> = self
            .pending
            .into_iter()
            .enumerate()
            .map(|(id, pending)| {
                Arc::new(match pending {
                    PendingShard::Local { store, batch } => {
                        let pool = Arc::new(Pool::new(workers_per_shard));
                        let engine = Arc::new(BatchEngine::start_with_pool(store, batch, pool));
                        Shard {
                            id,
                            label: format!("local-{id}"),
                            backend: Backend::Local { engine },
                            alive: AtomicBool::new(true),
                            draining: AtomicBool::new(false),
                            inflight: AtomicU64::new(0),
                            retry: RetryBudget::new(retry_budget),
                        }
                    }
                    PendingShard::Remote { addr } => Shard {
                        id,
                        label: addr.clone(),
                        backend: Backend::Remote {
                            addr,
                            conns: Mutex::new(Vec::new()),
                        },
                        alive: AtomicBool::new(true),
                        draining: AtomicBool::new(false),
                        inflight: AtomicU64::new(0),
                        retry: RetryBudget::new(retry_budget),
                    },
                })
            })
            .collect();
        let inner = Arc::new(Inner {
            shards: RwLock::new(shards),
            next_shard_id: AtomicUsize::new(n),
            replication: self.config.replication.max(1),
            connections_per_shard: self.config.connections_per_shard.max(1),
            remote_timeout: self.config.remote_timeout,
            drain_timeout: self.config.drain_timeout,
            retry_base: self.config.retry_base,
            retry_max: self.config.retry_max.max(self.config.retry_base),
            retry_seed: self.config.retry_seed,
            backoff_seq: AtomicU64::new(0),
            // Remote calls block a worker each; size for every shard making
            // progress concurrently plus failover headroom.
            io_pool: Pool::new((2 * n).max(4)),
            rr: AtomicUsize::new(0),
            stats: Mutex::new(RouterStats {
                routed: vec![0; n],
                ..RouterStats::default()
            }),
        });
        if !self.config.probe_interval.is_zero() {
            spawn_probe(Arc::downgrade(&inner), self.config.probe_interval);
        }
        Router { inner }
    }
}

/// Background health probe: holds only a `Weak` on the router internals (so a
/// dropped router is not kept alive by its own probe) and wakes every `interval`
/// to re-check dead shards. Sleeps in short steps so the thread notices the
/// router's death within ~50ms rather than a full interval.
fn spawn_probe(weak: std::sync::Weak<Inner>, interval: std::time::Duration) {
    let step = std::time::Duration::from_millis(50).min(interval);
    let spawned = std::thread::Builder::new()
        .name("tcca-router-probe".into())
        .spawn(move || {
            let mut elapsed = std::time::Duration::ZERO;
            loop {
                std::thread::sleep(step);
                let Some(inner) = weak.upgrade() else { return };
                elapsed += step;
                if elapsed >= interval {
                    elapsed = std::time::Duration::ZERO;
                    probe_dead_shards(&inner);
                }
            }
        });
    // A spawn failure only costs revival, not serving — degrade silently.
    drop(spawned);
}

/// One probe pass: every dead shard gets a liveness re-check, and recovered
/// shards return to rotation. A remote shard proves itself with a fresh connect
/// and ping (its old pooled sockets are stale after a restart, so the probe
/// connection seeds the pool). A local shard recovers only from a failover
/// false positive: its engine runs in-process, so a *stopped* engine is gone
/// for good and the shard stays dead.
///
/// The probe walks a snapshot of the *current* table each pass: shards admitted
/// at runtime are probed from their first dead moment, and removed shards are
/// never dialled again.
fn probe_dead_shards(inner: &Inner) {
    for shard in inner.snapshot() {
        if shard.is_alive() || shard.is_draining() {
            continue;
        }
        let recovered = match &shard.backend {
            Backend::Local { engine } => !engine.is_stopped(),
            Backend::Remote { addr, conns } => {
                match Client::connect_timeout(addr, inner.remote_timeout) {
                    Ok(mut client) => {
                        if client.ping().is_ok() {
                            let mut pool = conns.lock().expect("shard connection pool lock");
                            pool.clear(); // pre-restart sockets are all stale
                            pool.push(client);
                            true
                        } else {
                            false
                        }
                    }
                    Err(_) => false,
                }
            }
        };
        if recovered {
            shard.alive.store(true, Ordering::SeqCst);
            inner.stats.lock().expect("router stats lock").revivals += 1;
        }
    }
}

impl Router {
    /// A router over `n` in-process shards, each indexing `dir` with its own store
    /// (independent lazy payload caches — replicas warm up only what they serve).
    pub fn open_local(
        dir: impl AsRef<Path>,
        n: usize,
        batch: BatchConfig,
        config: RouterConfig,
    ) -> Result<Self> {
        let mut builder = RouterBuilder::new(config);
        for _ in 0..n.max(1) {
            let store = Arc::new(ModelStore::open(EstimatorRegistry::with_builtin(), &dir)?);
            builder = builder.local_shard(store, batch);
        }
        Ok(builder.build())
    }

    /// A snapshot of the shard table, in admission order.
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.inner.snapshot()
    }

    /// Ids of shards still considered live.
    pub fn live_shards(&self) -> Vec<usize> {
        self.inner
            .snapshot()
            .iter()
            .filter(|s| s.is_alive())
            .map(|s| s.id)
            .collect()
    }

    /// Kill a shard administratively: mark it dead and stop its engine (local
    /// shards). New requests never route to it.
    pub fn kill_shard(&self, id: usize) {
        if let Some(shard) = self.inner.shard(id) {
            shard.alive.store(false, Ordering::SeqCst);
            if let Backend::Local { engine } = &shard.backend {
                engine.stop();
            }
        }
    }

    /// Crash a local shard *without telling the router* — the engine stops but the
    /// shard stays in the routing table, exactly like a child process dying under
    /// a remote shard. The next request routed to it fails, gets failed over, and
    /// only then is the shard marked dead. Tests and the failover smoke use this.
    pub fn crash_shard(&self, id: usize) {
        if let Some(shard) = self.inner.shard(id) {
            if let Backend::Local { engine } = &shard.backend {
                engine.stop();
            }
        }
    }

    /// Mark a shard dead *without* touching its backend — what failover does when
    /// a request-level transport error implicates a shard. Unlike
    /// [`Router::kill_shard`] the backend keeps running, so the health probe (or
    /// [`Router::probe_now`]) can prove it healthy and return it to rotation.
    pub fn mark_dead(&self, id: usize) {
        if let Some(shard) = self.inner.shard(id) {
            shard.alive.store(false, Ordering::SeqCst);
        }
    }

    /// The cluster membership table (what the v5 `ClusterInfo` op returns).
    pub fn cluster_snapshot(&self) -> Vec<ShardInfo> {
        let routed = {
            let stats = self.inner.stats.lock().expect("router stats lock");
            stats.routed.clone()
        };
        self.inner
            .snapshot()
            .iter()
            .map(|s| ShardInfo {
                id: s.id as u64,
                label: s.label.clone(),
                alive: s.is_alive(),
                draining: s.is_draining(),
                inflight: s.inflight(),
                routed: routed.get(s.id).copied().unwrap_or(0) as u64,
            })
            .collect()
    }

    /// Run one health-probe pass synchronously (the background thread does the
    /// same on its own clock). Deterministic revival for tests and operators.
    pub fn probe_now(&self) {
        probe_dead_shards(&self.inner);
    }

    /// Counters since start.
    pub fn stats(&self) -> RouterStats {
        self.inner.stats.lock().expect("router stats lock").clone()
    }

    /// The failover candidate order for a model: the replica set (top-`replication`
    /// live shards by rendezvous score, rotated round-robin), then every other live
    /// shard as a last resort.
    fn candidates(&self, model: &str) -> Vec<usize> {
        let inner = &self.inner;
        let mut scored: Vec<(u64, usize)> = inner
            .snapshot()
            .iter()
            .filter(|s| s.accepts_work())
            .map(|s| (rendezvous_score(model, s.id), s.id))
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        let ids: Vec<usize> = scored.into_iter().map(|(_, id)| id).collect();
        if ids.is_empty() {
            return ids;
        }
        let r = inner.replication.min(ids.len());
        let start = inner.rr.fetch_add(1, Ordering::Relaxed) % r;
        let mut out = Vec::with_capacity(ids.len());
        for k in 0..ids.len() {
            if k < r {
                out.push(ids[(start + k) % r]);
            } else {
                out.push(ids[k]);
            }
        }
        out
    }
}

/// How one attempt of an op executes on one shard. `Fn` (not `FnOnce`) because a
/// failover re-runs it against the next candidate.
type Attempt<T> =
    Arc<dyn Fn(&Arc<Inner>, &Arc<Shard>, Box<dyn FnOnce(Result<T>) + Send>) + Send + Sync>;

/// Try candidates in order, failing over per the error taxonomy: transport
/// failures mark the shard dead and move on, overload verdicts move on without
/// an accusation, terminal errors stop immediately. A failover must win a
/// token from the *next* shard's retry budget and wait out a jittered
/// exponential backoff (scheduled on the I/O pool — nothing here blocks the
/// submitting thread). An expired deadline fails the request in-band before a
/// dead answer is computed. Each attempt's continuation recurses from whatever
/// thread completed it (pool worker or the submitting thread on fast-fail
/// paths).
///
/// Candidates are *stable ids*, resolved against the live table at attempt
/// time — a shard removed since the candidate list was computed is skipped,
/// not routed to. Each attempt holds the shard's in-flight count for its whole
/// duration, which is what drain-before-remove waits on.
fn try_shards<T: Send + 'static>(
    inner: Arc<Inner>,
    candidates: Vec<usize>,
    idx: usize,
    deadline: Option<Instant>,
    attempt: Attempt<T>,
    reply: Box<dyn FnOnce(Result<T>) + Send>,
) {
    let Some(&sid) = candidates.get(idx) else {
        return reply(Err(ServeError::NoLiveShards));
    };
    // Resolve the stable id against the *current* table: a shard the control
    // plane removed mid-request is skipped without spending a retry token.
    let Some(shard) = inner.shard(sid) else {
        return try_shards(inner, candidates, idx + 1, deadline, attempt, reply);
    };
    if deadline.is_some_and(|d| Instant::now() >= d) {
        inner
            .stats
            .lock()
            .expect("router stats lock")
            .deadline_drops += 1;
        return reply(Err(ServeError::DeadlineExceeded(
            "deadline passed before the request reached a shard".into(),
        )));
    }
    inner.note_routed(sid);
    shard.inflight.fetch_add(1, Ordering::SeqCst);
    let inner2 = Arc::clone(&inner);
    let attempt2 = Arc::clone(&attempt);
    let shard2 = Arc::clone(&shard);
    let cont: Box<dyn FnOnce(Result<T>) + Send> = Box::new(move |result| {
        // The attempt is over either way: release the drain gate before
        // anything else (a failover must not hold the dying shard's drain).
        shard2.inflight.fetch_sub(1, Ordering::SeqCst);
        match result {
            Ok(value) => {
                shard2.retry.refill();
                reply(Ok(value));
            }
            Err(e) => match e.class() {
                ErrorClass::Terminal => reply(Err(e)),
                class => {
                    if class == ErrorClass::Transport {
                        shard2.alive.store(false, Ordering::SeqCst);
                    }
                    let Some(&next) = candidates.get(idx + 1) else {
                        return reply(Err(e));
                    };
                    // A removed next candidate is a skip, not a retry: recurse
                    // without charging anyone's budget.
                    let Some(next_shard) = inner2.shard(next) else {
                        return try_shards(inner2, candidates, idx + 1, deadline, attempt2, reply);
                    };
                    if !next_shard.retry.try_spend() {
                        inner2
                            .stats
                            .lock()
                            .expect("router stats lock")
                            .retries_denied += 1;
                        return reply(Err(e));
                    }
                    inner2.stats.lock().expect("router stats lock").failovers += 1;
                    // Never sleep past the deadline: an expired request should get
                    // its in-band verdict promptly, not after a full backoff.
                    let mut delay = inner2.backoff(idx);
                    if let Some(d) = deadline {
                        delay = delay.min(d.saturating_duration_since(Instant::now()));
                    }
                    let inner3 = Arc::clone(&inner2);
                    inner2.io_pool.spawn(move || {
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        try_shards(inner3, candidates, idx + 1, deadline, attempt2, reply);
                    });
                }
            },
        }
    });
    attempt(&inner, &shard, cont);
}

/// Run a blocking remote call through the shard's connection pool. Connections
/// return to the pool after a success *or* a clean in-band error reply (the frame
/// boundary held, so the stream is still synchronized); they are dropped only on
/// transport-level failures, where the stream state is unknown. A transport
/// failure on a *pooled* connection is retried once on a fresh connection before
/// it counts against the shard — a restarted shard at the same address (whose old
/// sockets are all stale) must not be declared dead by its own redeploy. Fresh
/// connections carry the router's remote timeout so a hung shard fails over
/// instead of wedging an I/O worker.
fn with_remote_conn<T>(
    inner: &Inner,
    shard: &Shard,
    f: impl Fn(&mut Client) -> Result<T>,
) -> Result<T> {
    let Backend::Remote { addr, conns } = &shard.backend else {
        return Err(ServeError::Protocol("not a remote shard".into()));
    };
    // A clean in-band reply (the frame boundary held, so the stream is still
    // synchronized) returns the connection to the pool — including overload and
    // deadline verdicts, which say nothing about the socket's health.
    let clean = |r: &Result<T>| {
        matches!(
            r,
            Ok(_)
                | Err(ServeError::Remote(_))
                | Err(ServeError::Overloaded(_))
                | Err(ServeError::DeadlineExceeded(_))
        )
    };
    let pool_back = |mut client: Client| {
        // Undo any per-request deadline shortening before the next borrower.
        client.set_op_timeout(Some(inner.remote_timeout));
        let mut pool = conns.lock().expect("shard connection pool lock");
        if pool.len() < inner.connections_per_shard {
            pool.push(client);
        }
    };
    // Bind the pop outside the `if let` so the pool guard (a scrutinee temporary,
    // which would otherwise live for the whole body) is released before `f` runs —
    // `pool_back` re-locks the same mutex.
    let pooled = conns.lock().expect("shard connection pool lock").pop();
    if let Some(mut client) = pooled {
        let result = f(&mut client);
        match result {
            Err(ref e) if is_shard_failure(e) => {} // stale socket? try fresh below
            other => {
                if clean(&other) {
                    pool_back(client);
                }
                return other;
            }
        }
    }
    let mut client = Client::connect_timeout(addr, inner.remote_timeout)?;
    let result = f(&mut client);
    if clean(&result) {
        pool_back(client);
    }
    result
}

/// Arm a remote attempt against the request deadline: the socket timeout drops
/// to the time remaining (never above the router's remote timeout), and the
/// remaining budget in milliseconds is returned for in-band propagation — the
/// shard sheds the work itself if it can't finish in time.
fn arm_deadline(
    c: &mut Client,
    deadline: Option<Instant>,
    remote_timeout: Duration,
) -> Option<u32> {
    let d = deadline?;
    let left = d
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1));
    c.set_op_timeout(Some(left.min(remote_timeout)));
    Some(left.as_millis().min(u128::from(u32::MAX)) as u32)
}

impl TransformService for Router {
    fn submit_transform(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        let candidates = self.candidates(model);
        let model = model.to_string();
        // Each retryable attempt clones the `Arc` handle, never the matrices: on
        // the zero-failover happy path the request buffers the server decoded are
        // the very ones the winning shard's engine reads.
        let attempt: Attempt<Matrix> = Arc::new(move |inner, shard, cb| match &shard.backend {
            Backend::Local { engine } => {
                engine.submit_transform(&model, Arc::clone(&inputs), deadline, cb)
            }
            Backend::Remote { .. } => {
                let inner = Arc::clone(inner);
                let shard = Arc::clone(shard);
                let model = model.clone();
                let inputs = Arc::clone(&inputs);
                inner.clone().io_pool.spawn(move || {
                    cb(with_remote_conn(&inner, &shard, |c| {
                        match arm_deadline(c, deadline, inner.remote_timeout) {
                            Some(ms) => c.transform_deadline(&model, &inputs, ms),
                            None => c.transform(&model, &inputs),
                        }
                    }));
                });
            }
        });
        try_shards(
            Arc::clone(&self.inner),
            candidates,
            0,
            deadline,
            attempt,
            reply,
        );
    }

    fn submit_transform_view(
        &self,
        model: &str,
        which: usize,
        input: Arc<Matrix>,
        precision: Precision,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        let candidates = self.candidates(model);
        let model = model.to_string();
        let attempt: Attempt<Matrix> = Arc::new(move |inner, shard, cb| match &shard.backend {
            Backend::Local { engine } => engine.submit_transform_view(
                &model,
                which,
                Arc::clone(&input),
                precision,
                deadline,
                cb,
            ),
            Backend::Remote { .. } => {
                let inner = Arc::clone(inner);
                let shard = Arc::clone(shard);
                let model = model.clone();
                let input = Arc::clone(&input);
                inner.clone().io_pool.spawn(move || {
                    cb(with_remote_conn(&inner, &shard, |c| {
                        // The precision opt-in survives the hop: the remote
                        // shard decides f32 vs f64 from its own shadow cache.
                        match arm_deadline(c, deadline, inner.remote_timeout) {
                            Some(ms) => c.transform_view_deadline_precision(
                                &model, which, &input, ms, precision,
                            ),
                            None => c.transform_view_precision(&model, which, &input, precision),
                        }
                    }));
                });
            }
        });
        try_shards(
            Arc::clone(&self.inner),
            candidates,
            0,
            deadline,
            attempt,
            reply,
        );
    }

    fn submit_outputs(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: OutputsCallback,
    ) {
        let candidates = self.candidates(model);
        let model = model.to_string();
        let attempt: Attempt<Vec<NamedOutput>> =
            Arc::new(move |inner, shard, cb| match &shard.backend {
                Backend::Local { engine } => {
                    engine.submit_outputs(&model, Arc::clone(&inputs), deadline, cb)
                }
                Backend::Remote { .. } => {
                    let inner = Arc::clone(inner);
                    let shard = Arc::clone(shard);
                    let model = model.clone();
                    let inputs = Arc::clone(&inputs);
                    inner.clone().io_pool.spawn(move || {
                        cb(with_remote_conn(&inner, &shard, |c| {
                            match arm_deadline(c, deadline, inner.remote_timeout) {
                                Some(ms) => c.outputs_deadline(&model, &inputs, ms),
                                None => c.outputs(&model, &inputs),
                            }
                        }));
                    });
                }
            });
        try_shards(
            Arc::clone(&self.inner),
            candidates,
            0,
            deadline,
            attempt,
            reply,
        );
    }

    /// The union of every live shard's catalog (first shard wins on name clashes).
    fn catalog(&self) -> Result<Vec<ModelInfo>> {
        let mut merged: BTreeMap<String, ModelInfo> = BTreeMap::new();
        let mut last_err = None;
        let mut reached = 0usize;
        for shard in self.inner.snapshot().iter().filter(|s| s.is_alive()) {
            let listed = match &shard.backend {
                Backend::Local { engine } => Ok(store_catalog(engine.store())),
                Backend::Remote { .. } => with_remote_conn(&self.inner, shard, |c| c.list_models()),
            };
            match listed {
                Ok(models) => {
                    reached += 1;
                    for info in models {
                        merged.entry(info.name.clone()).or_insert(info);
                    }
                }
                Err(e) => {
                    if is_shard_failure(&e) {
                        shard.alive.store(false, Ordering::SeqCst);
                    }
                    last_err = Some(e);
                }
            }
        }
        match (reached, last_err) {
            (0, Some(e)) => Err(e),
            (0, None) => Err(ServeError::NoLiveShards),
            _ => Ok(merged.into_values().collect()),
        }
    }

    /// Shard-aware registration: forward the rescan to every live shard so new
    /// `.mvm` files become servable everywhere without a restart.
    fn rescan(&self) -> Result<RescanReport> {
        let mut total = RescanReport::default();
        let mut reached = 0usize;
        let mut last_err = None;
        for shard in self.inner.snapshot().iter().filter(|s| s.is_alive()) {
            let report = match &shard.backend {
                Backend::Local { engine } => engine.store().rescan(),
                Backend::Remote { .. } => with_remote_conn(&self.inner, shard, |c| c.rescan()),
            };
            match report {
                Ok(r) => {
                    reached += 1;
                    total.merge(r);
                }
                Err(e) => {
                    if is_shard_failure(&e) {
                        shard.alive.store(false, Ordering::SeqCst);
                    }
                    last_err = Some(e);
                }
            }
        }
        match (reached, last_err) {
            (0, Some(e)) => Err(e),
            (0, None) => Err(ServeError::NoLiveShards),
            _ => Ok(total),
        }
    }

    /// Counters summed by name across every live shard, plus the router's own
    /// (`router/failovers`, `router/revivals`, `router/routed`).
    fn stats(&self) -> Vec<(String, u64)> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for shard in self.inner.snapshot().iter().filter(|s| s.is_alive()) {
            let counters = match &shard.backend {
                Backend::Local { engine } => Ok(engine.stats().counters()),
                Backend::Remote { .. } => with_remote_conn(&self.inner, shard, |c| c.stats()),
            };
            if let Ok(counters) = counters {
                for (name, value) in counters {
                    *merged.entry(name).or_insert(0) += value;
                }
            }
        }
        {
            let own = self.inner.stats.lock().expect("router stats lock");
            merged.insert("router/failovers".into(), own.failovers as u64);
            merged.insert("router/revivals".into(), own.revivals as u64);
            merged.insert(
                "router/routed".into(),
                own.routed.iter().sum::<usize>() as u64,
            );
            merged.insert("router/retries_denied".into(), own.retries_denied as u64);
            merged.insert("router/deadline_drops".into(), own.deadline_drops as u64);
            merged.insert("router/control_ops".into(), own.control_ops as u64);
        }
        merged.into_iter().collect()
    }

    /// The live membership table (v5 `ClusterInfo`).
    fn cluster(&self) -> Result<Vec<ShardInfo>> {
        self.inner
            .stats
            .lock()
            .expect("router stats lock")
            .control_ops += 1;
        Ok(self.cluster_snapshot())
    }

    /// Validate and admit a remote shard (v5 `AddShard`): a fresh connect and
    /// ping must succeed before the shard enters the table (the probe
    /// connection seeds its pool), so a typo'd address is an in-band error,
    /// never a dead shard in rotation. Rendezvous hashing remaps only the
    /// models whose top-scoring shard changed.
    fn add_shard(&self, addr: &str) -> Result<Vec<ShardInfo>> {
        self.inner
            .stats
            .lock()
            .expect("router stats lock")
            .control_ops += 1;
        let mut client = Client::connect_timeout(addr, self.inner.remote_timeout)?;
        client.ping()?;
        let id = self.inner.next_shard_id.fetch_add(1, Ordering::SeqCst);
        let shard = Arc::new(Shard {
            id,
            label: addr.to_string(),
            backend: Backend::Remote {
                addr: addr.to_string(),
                conns: Mutex::new(vec![client]),
            },
            alive: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            retry: RetryBudget::new({
                // Match the budget the built shards got: reconstruct from any
                // existing shard's cap, falling back to the config default.
                let snapshot = self.inner.snapshot();
                snapshot
                    .first()
                    .map(|s| (s.retry.max / RetryBudget::RETRY_COST) as u32)
                    .unwrap_or(RouterConfig::default().retry_budget)
            }),
        });
        self.inner
            .shards
            .write()
            .expect("shard table lock")
            .push(shard);
        Ok(self.cluster_snapshot())
    }

    /// Drain and remove a shard (v5 `RemoveShard`): mark it draining (new
    /// requests stop routing to it immediately), wait for its in-flight count
    /// to reach zero (bounded by [`RouterConfig::drain_timeout`]), then take it
    /// out of the table — stopping a local shard's engine only after the
    /// drain, so completed work is never thrown away. Runs on the server's
    /// control thread, never the event loop.
    fn remove_shard(&self, shard_id: u64) -> Result<Vec<ShardInfo>> {
        self.inner
            .stats
            .lock()
            .expect("router stats lock")
            .control_ops += 1;
        let id = usize::try_from(shard_id)
            .map_err(|_| ServeError::Remote(format!("no shard with id {shard_id}")))?;
        let Some(shard) = self.inner.shard(id) else {
            return Err(ServeError::Remote(format!("no shard with id {shard_id}")));
        };
        shard.draining.store(true, Ordering::SeqCst);
        // Wait out the in-flight work this shard still holds. Requests that
        // raced the draining flag hold the count too, so they finish (or fail
        // over) before the shard disappears.
        let deadline = Instant::now() + self.inner.drain_timeout;
        while shard.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let mut table = self.inner.shards.write().expect("shard table lock");
            table.retain(|s| s.id != id);
        }
        if let Backend::Local { engine } = &shard.backend {
            engine.stop();
        }
        Ok(self.cluster_snapshot())
    }

    /// Forward the refit trigger to every live *remote* shard (a local engine has
    /// no trainer — the trainer wraps the engine, and a trainer-wrapped backend is
    /// served directly, not through a router's local shard). Counter snapshots are
    /// summed by name; an error only surfaces when no shard accepted the trigger.
    fn trigger_refit(&self) -> Result<Vec<(String, u64)>> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        let mut reached = 0usize;
        let mut last_err = None;
        for shard in self.inner.snapshot().iter().filter(|s| s.is_alive()) {
            if let Backend::Remote { .. } = &shard.backend {
                match with_remote_conn(&self.inner, shard, |c| c.refit()) {
                    Ok(counters) => {
                        reached += 1;
                        for (name, value) in counters {
                            *merged.entry(name).or_insert(0) += value;
                        }
                    }
                    Err(e) => {
                        if is_shard_failure(&e) {
                            shard.alive.store(false, Ordering::SeqCst);
                        }
                        last_err = Some(e);
                    }
                }
            }
        }
        match (reached, last_err) {
            (0, Some(e)) => Err(e),
            (0, None) => Err(ServeError::Remote(
                "no live shard has a trainer attached".into(),
            )),
            _ => Ok(merged.into_iter().collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{secstr_dataset, SecStrConfig};
    use mvcore::FitSpec;
    use std::time::Duration;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 24,
            seed: 21,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn tmp_models_dir(tag: &str, views: &[Matrix], names: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tcca-router-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let registry = EstimatorRegistry::with_builtin();
        let writer = ModelStore::new(EstimatorRegistry::with_builtin());
        for name in names {
            let model = registry
                .fit("PCA", views, &FitSpec::with_rank(2).epsilon(1e-2).seed(2))
                .unwrap();
            writer.save(&dir, name, model.as_ref()).unwrap();
        }
        dir
    }

    fn router_over(dir: &std::path::Path, n: usize) -> Router {
        Router::open_local(
            dir,
            n,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
            RouterConfig {
                replication: 2,
                connections_per_shard: 2,
                // Retry instantly: these tests provoke failover on purpose and
                // assert on outcomes, not pacing.
                retry_base: Duration::ZERO,
                ..RouterConfig::default()
            },
        )
        .unwrap()
    }

    /// Blocking helper mirroring `BatchEngine::transform`.
    fn transform(router: &Router, model: &str, inputs: Vec<Matrix>) -> Result<Matrix> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        router.submit_transform(
            model,
            Arc::new(inputs),
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("router reply")
    }

    #[test]
    fn routes_by_model_name_within_the_replica_set() {
        let views = fixture_views();
        let dir = tmp_models_dir("route", &views, &["a", "b", "c", "d"]);
        let router = router_over(&dir, 4);
        let expected = router.shards()[0].id;
        assert_eq!(expected, 0);

        for _ in 0..3 {
            for name in ["a", "b", "c", "d"] {
                let z = transform(&router, name, views.clone()).unwrap();
                assert_eq!(z.rows(), views[0].cols());
            }
        }
        let stats = router.stats();
        assert_eq!(stats.failovers, 0);
        assert_eq!(stats.routed.iter().sum::<usize>(), 12);
        // Replication 2 of 4 shards: every model's traffic stays inside a 2-shard
        // replica set, so with 4 models at least 2 shards must have seen traffic,
        // and round-robin inside the set spreads it.
        let active = stats.routed.iter().filter(|&&n| n > 0).count();
        assert!(active >= 2, "routed: {:?}", stats.routed);

        // The same model always lands in the same replica set: candidate lists for
        // one name only ever rotate within their first `replication` entries.
        let c1 = router.candidates("a");
        let c2 = router.candidates("a");
        let mut head1 = c1[..2].to_vec();
        let mut head2 = c2[..2].to_vec();
        head1.sort_unstable();
        head2.sort_unstable();
        assert_eq!(head1, head2);
        assert_eq!(c1[2..], c2[2..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killing_a_shard_fails_over_mid_stream() {
        let views = fixture_views();
        let dir = tmp_models_dir("failover", &views, &["m0", "m1"]);
        let router = router_over(&dir, 3);
        let direct = transform(&router, "m0", views.clone()).unwrap();

        // Crash two of the three shards *without telling the router*: the routing
        // table still lists them, so requests keep landing on dead shards, fail
        // over mid-request, and succeed bit-identically on the survivor. (The
        // replica set rotates round-robin, so within two requests at least one
        // must hit a crashed primary.)
        router.crash_shard(0);
        router.crash_shard(1);
        for _ in 0..4 {
            let z = transform(&router, "m0", views.clone()).unwrap();
            assert_eq!(z, direct, "failover changed the embedding");
        }
        assert!(router.stats().failovers >= 1);
        assert!(
            router.shards()[2].is_alive(),
            "the survivor must stay alive"
        );
        assert!(
            router.live_shards().len() < 3,
            "crashed shards must be discovered and marked dead"
        );

        // Killing every shard exhausts the candidates.
        for id in router.live_shards() {
            router.kill_shard(id);
        }
        assert!(matches!(
            transform(&router, "m0", views.clone()),
            Err(ServeError::NoLiveShards)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_and_rescan_merge_across_shards() {
        let views = fixture_views();
        let dir = tmp_models_dir("merge", &views, &["x"]);
        let router = router_over(&dir, 2);
        let catalog = router.catalog().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].name, "x");

        // A new model dropped into the directory reaches every shard via rescan.
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("PCA", &views, &FitSpec::with_rank(2).epsilon(1e-2).seed(8))
            .unwrap();
        ModelStore::new(EstimatorRegistry::with_builtin())
            .save(&dir, "y", model.as_ref())
            .unwrap();
        let report = router.rescan().unwrap();
        assert_eq!(report.added, 2, "both shards must index the new file");
        assert!(transform(&router, "y", views.clone()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_revives_a_falsely_accused_shard_but_not_a_stopped_one() {
        let views = fixture_views();
        let dir = tmp_models_dir("revive", &views, &["m"]);
        let router = router_over(&dir, 2);

        // Failover false positive: the shard is marked dead but its engine still
        // runs, so one probe pass proves it healthy and restores it to rotation.
        router.mark_dead(0);
        assert_eq!(router.live_shards(), vec![1]);
        router.probe_now();
        assert_eq!(router.live_shards(), vec![0, 1]);
        assert_eq!(router.stats().revivals, 1);

        // A stopped in-process engine is gone for good: the probe must not lie.
        router.kill_shard(0);
        router.probe_now();
        assert_eq!(router.live_shards(), vec![1]);
        assert_eq!(router.stats().revivals, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_probe_restores_rotation_without_an_explicit_pass() {
        let views = fixture_views();
        let dir = tmp_models_dir("bg-revive", &views, &["m"]);
        let router = Router::open_local(
            &dir,
            2,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
            RouterConfig {
                probe_interval: Duration::from_millis(100),
                ..RouterConfig::default()
            },
        )
        .unwrap();

        router.mark_dead(1);
        assert_eq!(router.live_shards(), vec![0]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while router.live_shards().len() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "background probe never revived the shard"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(router.stats().revivals >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_sum_across_shards_and_include_router_counters() {
        let views = fixture_views();
        let dir = tmp_models_dir("stats", &views, &["m"]);
        let router = router_over(&dir, 2);
        let _ = transform(&router, "m", views.clone()).unwrap();
        let stats = TransformService::stats(&router);
        let get = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}: {stats:?}"))
        };
        assert_eq!(get("requests"), 1, "engine counters must be summed in");
        assert_eq!(get("router/routed"), 1);
        assert_eq!(get("router/failovers"), 0);
        // No shard carries a trainer, so the trigger must report that cleanly.
        assert!(router.trigger_refit().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_budget_spends_and_refills_at_the_documented_ratio() {
        let budget = RetryBudget::new(2); // 2 retries banked
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "bucket must run dry after its balance");
        // Eight successes earn back exactly one retry.
        for _ in 0..7 {
            budget.refill();
            assert!(!budget.try_spend());
        }
        budget.refill();
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
        // Refills cap at the starting balance.
        for _ in 0..1000 {
            budget.refill();
        }
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
        // Budget 0 disables accounting.
        let unlimited = RetryBudget::new(0);
        for _ in 0..100 {
            assert!(unlimited.try_spend());
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered_in_band() {
        let views = fixture_views();
        let dir = tmp_models_dir("backoff", &views, &["m"]);
        let seq = |seed: u64| -> Vec<Duration> {
            let router = Router::open_local(
                &dir,
                1,
                BatchConfig::default(),
                RouterConfig {
                    retry_base: Duration::from_millis(10),
                    retry_max: Duration::from_millis(100),
                    retry_seed: seed,
                    probe_interval: Duration::ZERO,
                    ..RouterConfig::default()
                },
            )
            .unwrap();
            (0..8).map(|k| router.inner.backoff(k)).collect()
        };
        let a = seq(1);
        let b = seq(1);
        assert_eq!(a, b, "same seed must replay the same jitter sequence");
        assert_ne!(a, seq(2), "different seeds must diverge");
        for (k, &d) in a.iter().enumerate() {
            let cap = Duration::from_millis(10)
                .saturating_mul(1 << k as u32)
                .min(Duration::from_millis(100));
            assert!(
                d >= cap / 2 && d < cap,
                "attempt {k}: backoff {d:?} outside [{:?}, {cap:?})",
                cap / 2
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_is_dropped_in_band_before_any_shard_runs() {
        let views = fixture_views();
        let dir = tmp_models_dir("deadline", &views, &["m"]);
        let router = router_over(&dir, 2);
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        router.submit_transform(
            "m",
            Arc::new(views.clone()),
            Some(Instant::now() - Duration::from_millis(1)),
            Box::new(move |r| drop(tx.send(r))),
        );
        match rx.recv().expect("router reply") {
            Err(ServeError::DeadlineExceeded(_)) => {}
            other => panic!("expected an in-band deadline verdict, got {other:?}"),
        }
        let stats = router.stats();
        assert_eq!(stats.deadline_drops, 1);
        assert_eq!(
            stats.routed.iter().sum::<usize>(),
            0,
            "a dead request must never be routed"
        );
        // A generous deadline sails through.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        router.submit_transform(
            "m",
            Arc::new(views.clone()),
            Some(Instant::now() + Duration::from_secs(30)),
            Box::new(move |r| drop(tx.send(r))),
        );
        assert!(rx.recv().expect("router reply").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retry_budget_denies_failover_in_band() {
        let views = fixture_views();
        let dir = tmp_models_dir("retry-deny", &views, &["m"]);
        let router = Router::open_local(
            &dir,
            2,
            BatchConfig::default(),
            RouterConfig {
                retry_base: Duration::ZERO,
                probe_interval: Duration::ZERO,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Drain every shard's bucket, then crash a shard: failover has no
        // tokens left, so the transport error surfaces instead of a retry.
        for shard in router.shards() {
            while shard.retry.try_spend() {}
        }
        router.crash_shard(0);
        router.crash_shard(1);
        let err = transform(&router, "m", views.clone()).unwrap_err();
        assert!(is_shard_failure(&err), "expected the raw failure: {err}");
        assert!(router.stats().retries_denied >= 1);
        assert_eq!(router.stats().failovers, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rendezvous_scores_are_stable_and_spread() {
        // Stability: same inputs, same score.
        assert_eq!(rendezvous_score("m", 3), rendezvous_score("m", 3));
        // Different shards get different scores for the same model.
        let scores: std::collections::BTreeSet<u64> =
            (0..8).map(|s| rendezvous_score("model", s)).collect();
        assert_eq!(scores.len(), 8);
    }
}
