//! Chaos soak harness: drive the full serving stack through a seeded failure
//! schedule and prove the overload contract held.
//!
//! The harness builds a production-shaped topology *in one process*:
//! [`SoakConfig::local_shards`] in-process shards plus
//! [`SoakConfig::remote_shards`] loopback "remote" shards (real [`Server`]s
//! reached over TCP) behind a [`crate::Router`], behind a front [`Server`] —
//! then runs three phases of seeded client traffic (Zipf model popularity,
//! bursty arrivals, mixed op types, wire deadlines):
//!
//! 1. **pre** — steady state, the throughput baseline;
//! 2. **chaos** — one remote shard is killed outright (its process gone, its
//!    port refusing), a [`FaultPlan`] is installed against the other remote's
//!    link (connect refusals, stalls, truncated frames), a local shard is
//!    marked dead as a failover false positive, a churn thread hammers
//!    `Rescan`, and one surviving shard's payload budget is squeezed to force
//!    evictions;
//! 3. **recovery** — faults cleared, the killed shard restarts on its old
//!    port, the probe returns both remotes to rotation, and throughput must
//!    return to ≥ 90% of the baseline. Mid-phase, a **control-plane cycle**
//!    runs against the live front: a fresh shard is started, admitted with the
//!    v5 `AddShard` op, serves rebalanced traffic for a third of the phase,
//!    and is then drained and removed with `RemoveShard` — all while the
//!    seeded clients hammer the front, proving zero requests drop across a
//!    membership change.
//!
//! The contract asserted ([`SoakReport::violations`]): **zero** protocol
//! violations and **zero** transport errors on front connections (every
//! rejected request gets an in-band `Overloaded`/`DeadlineExceeded`/error
//! verdict — nothing hangs, nothing is silently dropped), and post-fault
//! throughput recovers. Every random decision — fault firing, model choice,
//! burst pacing — derives from one recorded seed, so a failing run replays.

use crate::faults::{self, FaultPlan};
use crate::{
    BatchConfig, Client, ModelStore, Result as ServeResult, RouterBuilder, RouterConfig,
    ServeError, Server, ServerTuning,
};
use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak workload and topology knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed: fault schedule, model popularity, burst pacing and the
    /// router's retry jitter all derive from it. Recorded in the report.
    pub seed: u64,
    /// Models in the fleet (Zipf-popular: model 0 is hottest).
    pub models: usize,
    /// Concurrent front connections.
    pub clients: usize,
    /// Wall-clock per phase.
    pub phase: Duration,
    /// Per-request deadline carried on the wire (v4); `0` sends none.
    pub deadline_ms: u32,
    /// Engine admission cap per shard (total queued requests).
    pub max_queue: usize,
    /// Per-model admission cap per shard.
    pub max_per_model: usize,
    /// Local shards (one is crashed in the chaos phase). Clamped to ≥ 2.
    pub local_shards: usize,
    /// Loopback remote shards. Clamped to ≥ 2: the chaos phase needs one to
    /// kill and one to fault; any extras just serve.
    pub remote_shards: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            models: 6,
            clients: 8,
            phase: Duration::from_millis(1500),
            deadline_ms: 250,
            max_queue: 256,
            max_per_model: 64,
            local_shards: 3,
            remote_shards: 2,
        }
    }
}

/// Outcome counts and latency percentiles for one phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Phase name (`pre`, `chaos`, `recovery`).
    pub name: String,
    /// Requests issued.
    pub requests: u64,
    /// Requests answered with a payload.
    pub ok: u64,
    /// In-band `Overloaded` sheds.
    pub overloaded: u64,
    /// In-band `DeadlineExceeded` verdicts.
    pub deadline_exceeded: u64,
    /// Other in-band rejections (remote error strings: unknown model, …).
    pub rejected_in_band: u64,
    /// Transport-level failures on a FRONT connection — must stay zero.
    pub transport_errors: u64,
    /// Protocol violations on a FRONT connection — must stay zero.
    pub protocol_violations: u64,
    /// Requests per second over the phase.
    pub rps: f64,
    /// Latency percentiles over *answered* requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

impl PhaseReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"requests\": {}, \"ok\": {}, \"overloaded\": {}, \
             \"deadline_exceeded\": {}, \"rejected_in_band\": {}, \"transport_errors\": {}, \
             \"protocol_violations\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}}}",
            self.name,
            self.requests,
            self.ok,
            self.overloaded,
            self.deadline_exceeded,
            self.rejected_in_band,
            self.transport_errors,
            self.protocol_violations,
            self.rps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
        )
    }
}

/// The full soak result: per-phase metrics plus the final counter snapshot.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The seed the run derived every random decision from — replay with it.
    pub seed: u64,
    /// Per-phase metrics: `pre`, `chaos`, `recovery`.
    pub phases: Vec<PhaseReport>,
    /// `recovery.rps / pre.rps`.
    pub recovery_ratio: f64,
    /// Failures of the mid-run control-plane cycle (shard add → rebalance →
    /// drain → remove under live traffic) — must stay empty.
    pub control_errors: Vec<String>,
    /// Final server/engine/router counters (`Stats` wire op) after recovery.
    pub stats: Vec<(String, u64)>,
}

impl SoakReport {
    /// The overload-contract violations this run committed; empty means the
    /// run passed.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for phase in &self.phases {
            if phase.protocol_violations > 0 {
                out.push(format!(
                    "{}: {} protocol violation(s) on front connections",
                    phase.name, phase.protocol_violations
                ));
            }
            if phase.transport_errors > 0 {
                out.push(format!(
                    "{}: {} transport error(s) on front connections",
                    phase.name, phase.transport_errors
                ));
            }
            if phase.requests == 0 {
                out.push(format!("{}: no requests completed", phase.name));
            }
        }
        if self.recovery_ratio < 0.9 {
            out.push(format!(
                "recovery throughput is {:.0}% of pre-chaos (< 90%)",
                self.recovery_ratio * 100.0
            ));
        }
        out.extend(self.control_errors.iter().cloned());
        out
    }

    /// Render the report as JSON (the `BENCH_7.json` / CI artifact format).
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| format!("    {}", p.to_json()))
            .collect();
        let counters: Vec<String> = self
            .stats
            .iter()
            .map(|(name, value)| format!("    \"{name}\": {value}"))
            .collect();
        let string_list = |items: &[String]| {
            if items.is_empty() {
                "[]".to_string()
            } else {
                let quoted: Vec<String> = items
                    .iter()
                    .map(|v| format!("    \"{}\"", v.replace('"', "'")))
                    .collect();
                format!("[\n{}\n  ]", quoted.join(",\n"))
            }
        };
        format!(
            "{{\n  \"fault_seed\": {},\n  \"recovery_ratio\": {:.3},\n  \"phases\": [\n{}\n  ],\n  \
             \"counters\": {{\n{}\n  }},\n  \"control_errors\": {},\n  \"violations\": {}\n}}",
            self.seed,
            self.recovery_ratio,
            phases.join(",\n"),
            counters.join(",\n"),
            string_list(&self.control_errors),
            string_list(&self.violations()),
        )
    }
}

/// xorshift64* — the workload's deterministic RNG (independent of the fault
/// layer's SplitMix64 decision hash).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Zipf-ish popularity: model `i` is drawn with weight `1/(i+1)`.
fn zipf_pick(rng: &mut Rng, cdf: &[f64]) -> usize {
    let roll = rng.below(1_000_000) as f64 / 1_000_000.0;
    cdf.iter().position(|&c| roll < c).unwrap_or(cdf.len() - 1)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct ClientTally {
    latencies_us: Vec<u64>,
    report: PhaseReport,
}

/// One client connection's loop for one phase: Zipf model choice, bursty
/// pacing, mixed op types, every outcome classified. The client carries a
/// 10-second per-op budget, so a server that silently dropped a request would
/// surface as a transport error here — the "zero hung connections" assertion.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    seed: u64,
    names: Arc<Vec<String>>,
    views: Arc<Vec<Matrix>>,
    cdf: Arc<Vec<f64>>,
    deadline_ms: u32,
    until: Instant,
) -> ClientTally {
    let mut rng = Rng::new(seed);
    let mut tally = ClientTally {
        latencies_us: Vec::new(),
        report: PhaseReport::default(),
    };
    let mut client: Option<Client> = None;
    while Instant::now() < until {
        // Bursty arrivals: bursts of 4–12 requests, then a seeded pause.
        let burst = 4 + rng.below(9);
        for _ in 0..burst {
            if Instant::now() >= until {
                break;
            }
            let c = match client.as_mut() {
                Some(c) => c,
                None => match Client::connect(addr) {
                    Ok(mut fresh) => {
                        fresh.set_op_timeout(Some(Duration::from_secs(10)));
                        client = Some(fresh);
                        client.as_mut().expect("just set")
                    }
                    Err(_) => {
                        tally.report.transport_errors += 1;
                        tally.report.requests += 1;
                        continue;
                    }
                },
            };
            let model = &names[zipf_pick(&mut rng, &cdf)];
            let op = rng.below(100);
            let started = Instant::now();
            let outcome: ServeResult<()> = if op < 70 {
                if deadline_ms > 0 {
                    c.transform_deadline(model, &views, deadline_ms).map(|_| ())
                } else {
                    c.transform(model, &views).map(|_| ())
                }
            } else if op < 85 {
                c.transform_view(model, 0, &views[0]).map(|_| ())
            } else if op < 95 {
                c.outputs(model, &views).map(|_| ())
            } else {
                c.stats().map(|_| ())
            };
            let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            tally.report.requests += 1;
            match outcome {
                Ok(()) => {
                    tally.report.ok += 1;
                    tally.latencies_us.push(elapsed_us);
                }
                Err(ServeError::Overloaded(_)) => tally.report.overloaded += 1,
                Err(ServeError::DeadlineExceeded(_)) => tally.report.deadline_exceeded += 1,
                Err(ServeError::Remote(_))
                | Err(ServeError::UnknownModel { .. })
                | Err(ServeError::Core(_))
                | Err(ServeError::NoLiveShards) => tally.report.rejected_in_band += 1,
                Err(ServeError::Protocol(_)) => {
                    tally.report.protocol_violations += 1;
                    client = None; // resync on a fresh connection
                }
                Err(ServeError::Io(_)) | Err(ServeError::EngineStopped) => {
                    tally.report.transport_errors += 1;
                    client = None;
                }
            }
        }
        std::thread::sleep(Duration::from_micros(200 + rng.below(1_800)));
    }
    tally
}

/// Run one phase of seeded traffic against the front.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &str,
    addr: SocketAddr,
    config: &SoakConfig,
    names: &Arc<Vec<String>>,
    views: &Arc<Vec<Matrix>>,
    cdf: &Arc<Vec<f64>>,
    phase_salt: u64,
) -> PhaseReport {
    let until = Instant::now() + config.phase;
    let started = Instant::now();
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|i| {
            let names = Arc::clone(names);
            let views = Arc::clone(views);
            let cdf = Arc::clone(cdf);
            let seed = config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(phase_salt * 1_000 + i as u64);
            let deadline_ms = config.deadline_ms;
            std::thread::spawn(move || {
                client_loop(addr, seed, names, views, cdf, deadline_ms, until)
            })
        })
        .collect();
    let mut merged = PhaseReport {
        name: name.to_string(),
        ..PhaseReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        let tally = handle.join().expect("soak client thread panicked");
        merged.requests += tally.report.requests;
        merged.ok += tally.report.ok;
        merged.overloaded += tally.report.overloaded;
        merged.deadline_exceeded += tally.report.deadline_exceeded;
        merged.rejected_in_band += tally.report.rejected_in_band;
        merged.transport_errors += tally.report.transport_errors;
        merged.protocol_violations += tally.report.protocol_violations;
        latencies.extend(tally.latencies_us);
    }
    let secs = started.elapsed().as_secs_f64();
    merged.rps = if secs > 0.0 {
        merged.requests as f64 / secs
    } else {
        0.0
    };
    latencies.sort_unstable();
    merged.p50_us = percentile(&latencies, 0.50);
    merged.p95_us = percentile(&latencies, 0.95);
    merged.p99_us = percentile(&latencies, 0.99);
    merged
}

/// Fit `n` small PCA models into a fresh temp directory. Returns
/// `(dir, names, request views)` — the request is a small column slice so one
/// transform is cheap and batching/shedding dominate.
fn soak_fixture(n: usize, seed: u64) -> Result<(PathBuf, Vec<String>, Vec<Matrix>), String> {
    let dir = std::env::temp_dir().join(format!("tcca-soak-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 48,
        seed: 13,
        difficulty: 0.8,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
        .collect();
    let registry = EstimatorRegistry::with_builtin();
    let store = ModelStore::new(EstimatorRegistry::with_builtin());
    let mut names = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("m{i}");
        let model = registry
            .fit(
                "PCA",
                &views,
                &FitSpec::with_rank(2)
                    .epsilon(1e-2)
                    .seed(seed.wrapping_add(i as u64)),
            )
            .map_err(|e| format!("fitting {name}: {e}"))?;
        store
            .save(&dir, &name, model.as_ref())
            .map_err(|e| format!("saving {name}: {e}"))?;
        names.push(name);
    }
    let slice: Vec<Matrix> = views
        .iter()
        .map(|v| v.select_columns(&(0..4).collect::<Vec<_>>()))
        .collect();
    Ok((dir, names, slice))
}

/// One loopback "remote" shard: a real [`Server`] over TCP, so the
/// router→shard link exists as an actual socket the fault layer can chew on —
/// and so "kill the shard" means the listener genuinely goes away.
struct RemoteShard {
    addr: SocketAddr,
    shutdown: crate::server::ShutdownHandle,
    thread: std::thread::JoinHandle<ServeResult<()>>,
}

impl RemoteShard {
    fn start(addr: &str, dir: &Path, batch: BatchConfig) -> Result<Self, String> {
        let store = Arc::new(
            ModelStore::open(EstimatorRegistry::with_builtin(), dir)
                .map_err(|e| format!("indexing remote shard: {e}"))?,
        );
        let server =
            Server::bind(addr, store, batch).map_err(|e| format!("binding remote shard: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Ok(Self {
            addr,
            shutdown,
            thread,
        })
    }

    /// Kill the shard outright: stop the event loop and join it. The port now
    /// refuses connections like a dead process.
    fn kill(self) -> SocketAddr {
        self.shutdown.shutdown();
        let _ = self.thread.join();
        self.addr
    }
}

/// Run the full three-phase chaos soak. The returned report carries the seed;
/// [`SoakReport::violations`] is the pass/fail verdict.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    let (dir, names, views) = soak_fixture(config.models.max(1), config.seed)?;
    let batch = BatchConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(1),
        max_queue: config.max_queue,
        max_per_model: config.max_per_model,
    };

    // The remote fleet: the first is killed and restarted, the second keeps
    // running but gets its link faulted; any extras just serve.
    let n_remotes = config.remote_shards.max(2);
    let mut remotes = Vec::with_capacity(n_remotes);
    for _ in 0..n_remotes {
        remotes.push(RemoteShard::start("127.0.0.1:0", &dir, batch)?);
    }
    let doomed = remotes.remove(0);
    let faulted = remotes.remove(0);

    // Local shards + the remotes, behind one router with a fast probe and the
    // seeded retry discipline.
    let mut builder = RouterBuilder::new(RouterConfig {
        replication: 2,
        connections_per_shard: 2,
        remote_timeout: Duration::from_secs(2),
        probe_interval: Duration::from_millis(100),
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(50),
        retry_seed: config.seed,
        retry_budget: 64,
        drain_timeout: Duration::from_secs(2),
    });
    let mut shard_stores = Vec::new();
    for _ in 0..config.local_shards.max(2) {
        let store = Arc::new(
            ModelStore::open(EstimatorRegistry::with_builtin(), &dir)
                .map_err(|e| format!("indexing shard: {e}"))?,
        );
        shard_stores.push(Arc::clone(&store));
        builder = builder.local_shard(store, batch);
    }
    builder = builder.remote_shard(doomed.addr.to_string());
    builder = builder.remote_shard(faulted.addr.to_string());
    for extra in &remotes {
        builder = builder.remote_shard(extra.addr.to_string());
    }
    let router = Arc::new(builder.build());
    let remote_ids = router.shards().len() - n_remotes..router.shards().len();

    // The front everything is judged at.
    let front = Server::bind_service_tuned(
        "127.0.0.1:0",
        Arc::clone(&router) as _,
        ServerTuning {
            max_inflight_per_conn: 64,
            ..ServerTuning::default()
        },
    )
    .map_err(|e| format!("binding front: {e}"))?;
    let front_addr = front.local_addr().map_err(|e| e.to_string())?;
    let front_shutdown = front.shutdown_handle();
    let front_thread = std::thread::spawn(move || front.run());

    let names = Arc::new(names);
    let views = Arc::new(views);
    let cdf = {
        let weights: Vec<f64> = (0..names.len()).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        Arc::new(
            weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect::<Vec<f64>>(),
        )
    };

    // Phase 1: steady state.
    let pre = run_phase("pre", front_addr, config, &names, &views, &cdf, 1);

    // Phase 2: chaos. One remote shard dies outright (port refusing); the
    // other remote's link gets seeded refusals/stalls/truncations; a local
    // shard is marked dead as a failover false positive; a churn thread
    // hammers rescan; one survivor's payload budget is squeezed to force
    // eviction pressure.
    let doomed_addr = doomed.kill();
    router.mark_dead(0);
    faults::install(FaultPlan {
        seed: config.seed,
        target_port: Some(faulted.addr.port()),
        connect_refuse: 300,
        read_delay: 150,
        read_delay_ms: 20,
        write_trunc: 100,
        write_delay: 150,
        write_delay_ms: 10,
    });
    if let Some(store) = shard_stores.get(1) {
        store.set_payload_budget(64 * 1024);
    }
    let churn_stop = Arc::new(AtomicBool::new(false));
    let churn_thread = {
        let stop = Arc::clone(&churn_stop);
        std::thread::spawn(move || {
            let mut client = match Client::connect(front_addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            client.set_op_timeout(Some(Duration::from_secs(10)));
            while !stop.load(Ordering::Relaxed) {
                let _ = client.rescan();
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let chaos = run_phase("chaos", front_addr, config, &names, &views, &cdf, 2);

    // Phase 3: recovery. Faults off, eviction pressure off, the killed shard
    // restarts on its old port ("the process came back"), and the probe must
    // return every shard to rotation before the measured window.
    faults::clear();
    churn_stop.store(true, Ordering::Relaxed);
    let _ = churn_thread.join();
    if let Some(store) = shard_stores.get(1) {
        store.set_payload_budget(0);
    }
    let mut revived = None;
    let rebind_by = Instant::now() + Duration::from_secs(3);
    while revived.is_none() && Instant::now() < rebind_by {
        match RemoteShard::start(&doomed_addr.to_string(), &dir, batch) {
            Ok(shard) => revived = Some(shard),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let revived = revived.ok_or_else(|| format!("could not rebind {doomed_addr} for recovery"))?;
    let revive_by = Instant::now() + Duration::from_secs(3);
    while router.shards()[remote_ids.clone()]
        .iter()
        .any(|s| !s.is_alive())
        && Instant::now() < revive_by
    {
        router.probe_now();
        std::thread::sleep(Duration::from_millis(20));
    }

    // Mid-recovery control-plane cycle, concurrent with live traffic: start a
    // fresh shard, admit it through the wire (v5 AddShard), let rebalanced
    // traffic hit it for a third of the phase, then drain and remove it (v5
    // RemoveShard). The front's zero-transport-error contract holding across
    // the membership change is the "no dropped requests" proof.
    let control_errors: Arc<std::sync::Mutex<Vec<String>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let control_thread = {
        let errors = Arc::clone(&control_errors);
        let dir = dir.clone();
        let dwell = config.phase / 3;
        std::thread::spawn(move || {
            let note = |msg: String| errors.lock().expect("control errors lock").push(msg);
            let joiner = match RemoteShard::start("127.0.0.1:0", &dir, batch) {
                Ok(shard) => shard,
                Err(e) => return note(format!("control: starting joiner shard: {e}")),
            };
            let joiner_label = joiner.addr.to_string();
            let mut client = match Client::connect(front_addr) {
                Ok(c) => c,
                Err(e) => {
                    note(format!("control: connecting to the front: {e}"));
                    joiner.kill();
                    return;
                }
            };
            client.set_op_timeout(Some(Duration::from_secs(10)));
            let cluster = match client.add_shard(&joiner_label) {
                Ok(cluster) => cluster,
                Err(e) => {
                    note(format!("control: AddShard {joiner_label}: {e}"));
                    joiner.kill();
                    return;
                }
            };
            let Some(added) = cluster.iter().find(|s| s.label == joiner_label) else {
                note(format!(
                    "control: admitted shard {joiner_label} missing from the cluster snapshot"
                ));
                joiner.kill();
                return;
            };
            let id = added.id;
            std::thread::sleep(dwell);
            match client.remove_shard(id) {
                Ok(cluster) => {
                    if cluster.iter().any(|s| s.id == id) {
                        note(format!("control: removed shard {id} still in the table"));
                    }
                }
                Err(e) => note(format!("control: RemoveShard {id}: {e}")),
            }
            joiner.kill();
        })
    };
    let recovery = run_phase("recovery", front_addr, config, &names, &views, &cdf, 3);
    let _ = control_thread.join();

    // Final counter snapshot through the wire, like an operator would take it.
    let stats = Client::connect(front_addr)
        .and_then(|mut c| {
            c.set_op_timeout(Some(Duration::from_secs(10)));
            c.stats()
        })
        .unwrap_or_default();

    front_shutdown.shutdown();
    let _ = front_thread.join();
    revived.kill();
    faulted.kill();
    for extra in remotes {
        extra.kill();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let recovery_ratio = if pre.rps > 0.0 {
        recovery.rps / pre.rps
    } else {
        0.0
    };
    let control_errors = control_errors.lock().expect("control errors lock").clone();
    Ok(SoakReport {
        seed: config.seed,
        phases: vec![pre, chaos, recovery],
        recovery_ratio,
        control_errors,
        stats,
    })
}
