//! [`ModelStore`]: name → fitted model, backed by a directory of `.mvm` files.
//!
//! The store indexes a directory by reading only the `MVTC` *headers* (method,
//! embedding width, view count, input kind, payload checksum) — cheap even for large
//! factor matrices — and deserializes a model's payload lazily on first use. Models
//! may also be inserted directly (a freshly fitted model being promoted to serving
//! without a disk round-trip).

use crate::{Result, ServeError};
use mvcore::{persist, EstimatorRegistry, ModelMeta, MultiViewModel};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// File extension of serialized models recognized by [`ModelStore::open`].
pub const MODEL_EXTENSION: &str = "mvm";

/// One store entry: header metadata plus the lazily-loaded model.
pub struct StoredModel {
    name: String,
    meta: ModelMeta,
    path: Option<PathBuf>,
    model: Mutex<Option<Arc<dyn MultiViewModel>>>,
}

impl StoredModel {
    /// Store name (the file stem for disk-backed entries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Header metadata (method, dim, views, input kind, checksum).
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Backing file, if the entry came from disk.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether the payload has been deserialized yet.
    pub fn is_loaded(&self) -> bool {
        self.model.lock().expect("store entry lock").is_some()
    }
}

/// A registry-driven model store with lazy loading.
pub struct ModelStore {
    registry: EstimatorRegistry,
    entries: RwLock<BTreeMap<String, Arc<StoredModel>>>,
}

impl ModelStore {
    /// An empty store dispatching loads through the given registry.
    pub fn new(registry: EstimatorRegistry) -> Self {
        Self {
            registry,
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// Create a store and index every `*.mvm` file in `dir` (header-only; payloads
    /// load lazily). The file stem becomes the model name.
    pub fn open(registry: EstimatorRegistry, dir: impl AsRef<Path>) -> Result<Self> {
        let store = Self::new(registry);
        store.index_dir(dir)?;
        Ok(store)
    }

    /// Index (or re-index) every `*.mvm` file in a directory into the store.
    /// Existing entries with the same name are replaced.
    pub fn index_dir(&self, dir: impl AsRef<Path>) -> Result<usize> {
        let dir = dir.as_ref();
        let mut added = 0;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXTENSION) {
                continue;
            }
            self.index_file(&path)?;
            added += 1;
        }
        Ok(added)
    }

    /// Index one model file under its file stem.
    pub fn index_file(&self, path: &Path) -> Result<Arc<StoredModel>> {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| {
                ServeError::Protocol(format!("model file {} has no UTF-8 stem", path.display()))
            })?
            .to_string();
        let mut reader = BufReader::new(std::fs::File::open(path)?);
        let meta = persist::read_meta(&mut reader)?;
        if !self.registry.contains(&meta.method) {
            return Err(ServeError::Core(mvcore::CoreError::UnknownEstimator {
                name: meta.method,
                known: self
                    .registry
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            }));
        }
        let entry = Arc::new(StoredModel {
            name: name.clone(),
            meta,
            path: Some(path.to_path_buf()),
            model: Mutex::new(None),
        });
        self.entries
            .write()
            .expect("store lock")
            .insert(name, Arc::clone(&entry));
        Ok(entry)
    }

    /// Insert an already-fitted model under a name (no disk backing).
    pub fn insert(&self, name: impl Into<String>, model: Box<dyn MultiViewModel>) {
        let name = name.into();
        let meta = ModelMeta {
            method: model.name().to_string(),
            dim: model.dim(),
            num_views: model.num_views(),
            input_kind: model.input_kind(),
            payload_len: 0,
            checksum: 0,
        };
        let entry = Arc::new(StoredModel {
            name: name.clone(),
            meta,
            path: None,
            model: Mutex::new(Some(Arc::from(model))),
        });
        self.entries
            .write()
            .expect("store lock")
            .insert(name, entry);
    }

    /// Serialize a model into `dir/name.mvm` and index it. Returns the entry.
    pub fn save(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
        model: &dyn MultiViewModel,
    ) -> Result<Arc<StoredModel>> {
        let path = dir.as_ref().join(format!("{name}.{MODEL_EXTENSION}"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        model.save(&mut file)?;
        std::io::Write::flush(&mut file)?;
        self.index_file(&path)
    }

    /// All model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("store lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The entry for a name (metadata without forcing a load).
    pub fn entry(&self, name: &str) -> Result<Arc<StoredModel>> {
        self.entries
            .read()
            .expect("store lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
                known: self.names(),
            })
    }

    /// The loaded model for a name, deserializing the file payload on first use.
    pub fn get(&self, name: &str) -> Result<Arc<dyn MultiViewModel>> {
        let entry = self.entry(name)?;
        let mut slot = entry.model.lock().expect("store entry lock");
        if let Some(model) = slot.as_ref() {
            return Ok(Arc::clone(model));
        }
        let path = entry.path.as_ref().ok_or_else(|| {
            ServeError::Protocol(format!("model {name:?} has neither payload nor path"))
        })?;
        let mut reader = BufReader::new(std::fs::File::open(path)?);
        let model: Arc<dyn MultiViewModel> = Arc::from(self.registry.load_model(&mut reader)?);
        *slot = Some(Arc::clone(&model));
        Ok(model)
    }

    /// The registry used to load models.
    pub fn registry(&self) -> &EstimatorRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{secstr_dataset, SecStrConfig};
    use linalg::Matrix;
    use mvcore::FitSpec;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 30,
            seed: 9,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcca-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_index_and_lazy_load() {
        let dir = tmp_dir("roundtrip");
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(4);
        let model = registry.fit("PCA", &views, &spec).unwrap();
        let expected = model.transform(&views).unwrap();

        let store = ModelStore::new(EstimatorRegistry::with_builtin());
        store.save(&dir, "pca-demo", model.as_ref()).unwrap();

        // A second store discovers the file by scanning the directory.
        let store2 = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        assert_eq!(store2.names(), vec!["pca-demo".to_string()]);
        let entry = store2.entry("pca-demo").unwrap();
        assert_eq!(entry.meta().method, "PCA");
        assert_ne!(entry.meta().checksum, 0);
        assert!(
            !entry.is_loaded(),
            "metadata read must not load the payload"
        );

        let loaded = store2.get("pca-demo").unwrap();
        assert!(entry.is_loaded());
        let z = loaded.transform(&views).unwrap();
        assert_eq!(z, expected);

        // Unknown names list what is available.
        let err = store2.get("nope").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("pca-demo"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_serves_in_memory_models() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry.fit("CAT", &views, &FitSpec::with_rank(2)).unwrap();
        let store = ModelStore::new(EstimatorRegistry::with_builtin());
        store.insert("cat", model);
        let entry = store.entry("cat").unwrap();
        assert_eq!(entry.meta().method, "CAT");
        assert!(entry.is_loaded());
        assert!(store.get("cat").unwrap().transform(&views).is_ok());
    }

    #[test]
    fn non_model_files_are_skipped_and_corrupt_headers_error() {
        let dir = tmp_dir("corrupt");
        std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        assert!(store.names().is_empty());

        std::fs::write(dir.join("bad.mvm"), b"not a model at all").unwrap();
        let err = ModelStore::open(EstimatorRegistry::with_builtin(), &dir)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
