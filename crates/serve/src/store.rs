//! [`ModelStore`]: name → fitted model, backed by a directory of `.mvm` files.
//!
//! The store indexes a directory by reading only the `MVTC` *headers* (method,
//! embedding width, view count, input kind, payload checksum) — cheap even for large
//! factor matrices — and deserializes a model's payload lazily on first use. Models
//! may also be inserted directly (a freshly fitted model being promoted to serving
//! without a disk round-trip).
//!
//! ## Live lifecycle
//!
//! A store opened over a directory remembers it, and [`ModelStore::rescan`] makes
//! new `.mvm` files servable **without a restart**: new files are indexed, files
//! whose mtime/size/checksum changed get their header re-read and their cached
//! payload dropped (the next request deserializes the new bytes), and entries whose
//! backing file vanished are removed. Corrupt files encountered during a rescan are skipped
//! — a live server must not die because someone half-copied a model in.
//!
//! [`ModelStore::set_payload_budget`] bounds resident deserialized payload bytes:
//! after every lazy load the least-recently-used disk-backed payloads are evicted
//! until the budget holds again (header metadata always stays resident; in-memory
//! [`ModelStore::insert`] entries have no file to reload from and are never
//! evicted). The most recently loaded payload is always kept, even when it alone
//! exceeds the budget — eviction must not thrash the model being served.

use crate::wire::RescanReport;
use crate::{Result, ServeError};
use linalg::MatrixF32;
use mvcore::{persist, EstimatorRegistry, ModelMeta, MultiViewModel};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

/// File extension of serialized models recognized by [`ModelStore::open`].
pub const MODEL_EXTENSION: &str = "mvm";

/// One view's single-precision copy of a model's linear projection: the factor
/// matrix and optional mean shift narrowed to `f32` once at build time, so the
/// opt-in `f32` serving path never converts per request.
pub struct ViewShadowF32 {
    /// The `d × r` projection weights, narrowed.
    pub weights: MatrixF32,
    /// Per-feature shift (length `d`), narrowed.
    pub shift: Option<Vec<f32>>,
}

/// Cached `f32` shadow of a model's per-view projections, built lazily by
/// [`ModelStore::f32_shadow`] from [`mvcore::MultiViewModel::view_projection`].
/// Views whose transform is not a plain shifted projection (kernel methods,
/// multi-candidate baselines) hold `None` and keep serving `f64`.
///
/// The shadow lives on the store entry, not the model: the authoritative `f64`
/// factors on disk and in [`ModelStore::get`] are untouched, and a rescan that
/// reloads a changed file replaces the entry — and with it the shadow — so a
/// stale narrowing can never outlive the weights it was derived from.
pub struct ModelShadowF32 {
    views: Vec<Option<ViewShadowF32>>,
}

impl ModelShadowF32 {
    /// The shadow for one view, when that view is a plain linear projection.
    pub fn view(&self, which: usize) -> Option<&ViewShadowF32> {
        self.views.get(which)?.as_ref()
    }

    /// Resident bytes of all narrowed factor matrices and shifts.
    pub fn memory_bytes(&self) -> usize {
        self.views
            .iter()
            .flatten()
            .map(|v| {
                v.weights.memory_bytes()
                    + v.shift
                        .as_ref()
                        .map_or(0, |s| s.len() * std::mem::size_of::<f32>())
            })
            .sum()
    }
}

/// One store entry: header metadata plus the lazily-loaded model.
pub struct StoredModel {
    name: String,
    meta: ModelMeta,
    path: Option<PathBuf>,
    /// mtime and byte length of the backing file at index time — the change
    /// fingerprint [`ModelStore::rescan`] compares against.
    mtime: Option<SystemTime>,
    file_len: u64,
    /// Logical timestamp of the last [`ModelStore::get`], for LRU eviction.
    last_used: AtomicU64,
    model: Mutex<Option<Arc<dyn MultiViewModel>>>,
    /// Lazily-built `f32` shadow of the model's per-view projections. Survives
    /// payload eviction (the narrowing is still valid while the file is
    /// unchanged); dropped wholesale when a rescan replaces the entry.
    shadow: Mutex<Option<Arc<ModelShadowF32>>>,
}

impl StoredModel {
    /// Store name (the file stem for disk-backed entries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Header metadata (method, dim, views, input kind, checksum).
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Backing file, if the entry came from disk.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether the payload has been deserialized yet.
    pub fn is_loaded(&self) -> bool {
        self.model.lock().expect("store entry lock").is_some()
    }
}

/// A registry-driven model store with lazy loading, directory rescanning and an
/// optional LRU payload budget.
pub struct ModelStore {
    registry: EstimatorRegistry,
    entries: RwLock<BTreeMap<String, Arc<StoredModel>>>,
    /// The directory [`ModelStore::open`] indexed, remembered for rescans.
    dir: RwLock<Option<PathBuf>>,
    /// Resident payload byte budget; 0 means unlimited.
    budget: AtomicU64,
    /// Monotonic logical clock stamping [`StoredModel::last_used`].
    clock: AtomicU64,
    /// Lifetime count of files a rescan skipped because their header failed to
    /// parse — silent serving degradation unless surfaced.
    rescan_corrupt: AtomicU64,
    /// Lifetime count of entries dropped because their backing file vanished.
    rescan_vanished: AtomicU64,
}

impl ModelStore {
    /// An empty store dispatching loads through the given registry.
    pub fn new(registry: EstimatorRegistry) -> Self {
        Self {
            registry,
            entries: RwLock::new(BTreeMap::new()),
            dir: RwLock::new(None),
            budget: AtomicU64::new(0),
            clock: AtomicU64::new(1),
            rescan_corrupt: AtomicU64::new(0),
            rescan_vanished: AtomicU64::new(0),
        }
    }

    /// Lifetime health counters, exported through the `Stats` wire op so
    /// operators can see degradation (corrupt or vanished model files) that a
    /// single [`ModelStore::rescan`] reply would only show once.
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            (
                "store/rescan_corrupt_skipped".into(),
                self.rescan_corrupt.load(Ordering::Relaxed),
            ),
            (
                "store/rescan_vanished".into(),
                self.rescan_vanished.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Create a store and index every `*.mvm` file in `dir` (header-only; payloads
    /// load lazily). The file stem becomes the model name. The directory is
    /// remembered: [`ModelStore::rescan`] picks up later additions/changes/removals.
    pub fn open(registry: EstimatorRegistry, dir: impl AsRef<Path>) -> Result<Self> {
        let store = Self::new(registry);
        store.index_dir(&dir)?;
        *store.dir.write().expect("store dir lock") = Some(dir.as_ref().to_path_buf());
        Ok(store)
    }

    /// Index (or re-index) every `*.mvm` file in a directory into the store.
    /// Existing entries with the same name are replaced.
    pub fn index_dir(&self, dir: impl AsRef<Path>) -> Result<usize> {
        let dir = dir.as_ref();
        let mut added = 0;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXTENSION) {
                continue;
            }
            self.index_file(&path)?;
            added += 1;
        }
        Ok(added)
    }

    /// Index one model file under its file stem.
    pub fn index_file(&self, path: &Path) -> Result<Arc<StoredModel>> {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| {
                ServeError::Protocol(format!("model file {} has no UTF-8 stem", path.display()))
            })?
            .to_string();
        let file_meta = std::fs::metadata(path)?;
        let mut reader = BufReader::new(std::fs::File::open(path)?);
        let meta = persist::read_meta(&mut reader)?;
        if !self.registry.contains(&meta.method) {
            return Err(ServeError::Core(mvcore::CoreError::UnknownEstimator {
                name: meta.method,
                known: self
                    .registry
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            }));
        }
        let entry = Arc::new(StoredModel {
            name: name.clone(),
            meta,
            path: Some(path.to_path_buf()),
            mtime: file_meta.modified().ok(),
            file_len: file_meta.len(),
            last_used: AtomicU64::new(0),
            model: Mutex::new(None),
            shadow: Mutex::new(None),
        });
        self.entries
            .write()
            .expect("store lock")
            .insert(name, Arc::clone(&entry));
        Ok(entry)
    }

    /// Insert an already-fitted model under a name (no disk backing).
    pub fn insert(&self, name: impl Into<String>, model: Box<dyn MultiViewModel>) {
        let name = name.into();
        let meta = ModelMeta {
            method: model.name().to_string(),
            dim: model.dim(),
            num_views: model.num_views(),
            input_kind: model.input_kind(),
            model_version: 0,
            parent_crc: 0,
            payload_len: 0,
            checksum: 0,
        };
        let entry = Arc::new(StoredModel {
            name: name.clone(),
            meta,
            path: None,
            mtime: None,
            file_len: 0,
            last_used: AtomicU64::new(0),
            model: Mutex::new(Some(Arc::from(model))),
            shadow: Mutex::new(None),
        });
        self.entries
            .write()
            .expect("store lock")
            .insert(name, entry);
    }

    /// Serialize a model into `dir/name.mvm` and index it. Returns the entry.
    pub fn save(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
        model: &dyn MultiViewModel,
    ) -> Result<Arc<StoredModel>> {
        let path = dir.as_ref().join(format!("{name}.{MODEL_EXTENSION}"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        model.save(&mut file)?;
        std::io::Write::flush(&mut file)?;
        self.index_file(&path)
    }

    /// All model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("store lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The entry for a name (metadata without forcing a load).
    pub fn entry(&self, name: &str) -> Result<Arc<StoredModel>> {
        self.entries
            .read()
            .expect("store lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
                known: self.names(),
            })
    }

    /// The loaded model for a name, deserializing the file payload on first use.
    /// Stamps the entry's LRU clock and, when a payload budget is set, evicts
    /// least-recently-used payloads afterwards.
    pub fn get(&self, name: &str) -> Result<Arc<dyn MultiViewModel>> {
        let entry = self.entry(name)?;
        entry.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        let mut freshly_loaded = false;
        let model = {
            let mut slot = entry.model.lock().expect("store entry lock");
            match slot.as_ref() {
                Some(model) => Arc::clone(model),
                None => {
                    let path = entry.path.as_ref().ok_or_else(|| {
                        ServeError::Protocol(format!("model {name:?} has neither payload nor path"))
                    })?;
                    let mut reader = BufReader::new(std::fs::File::open(path)?);
                    let model: Arc<dyn MultiViewModel> =
                        Arc::from(self.registry.load_model(&mut reader)?);
                    *slot = Some(Arc::clone(&model));
                    freshly_loaded = true;
                    model
                }
            }
        };
        if freshly_loaded {
            self.enforce_budget(name);
        }
        Ok(model)
    }

    /// The cached `f32` shadow of a model's per-view projections, built on
    /// first use from [`mvcore::MultiViewModel::view_projection`] (loading the
    /// payload if needed). Every model yields a shadow object; views without a
    /// plain linear projection hold `None` inside it, so callers fall back to
    /// the `f64` path per view. The narrowing happens **once** per entry —
    /// requests only read the cache.
    pub fn f32_shadow(&self, name: &str) -> Result<Arc<ModelShadowF32>> {
        let entry = self.entry(name)?;
        if let Some(shadow) = entry.shadow.lock().expect("store shadow lock").as_ref() {
            return Ok(Arc::clone(shadow));
        }
        // Build outside the shadow lock: `get` may deserialize a large payload,
        // and a concurrent duplicate build is harmless (last writer wins with an
        // identical value — the narrowing is deterministic).
        let model = self.get(name)?;
        let views = (0..model.num_views())
            .map(|v| {
                model.view_projection(v).map(|p| ViewShadowF32 {
                    weights: MatrixF32::from_f64(p.weights),
                    shift: p.shift.map(|s| s.iter().map(|&x| x as f32).collect()),
                })
            })
            .collect();
        let shadow = Arc::new(ModelShadowF32 { views });
        *entry.shadow.lock().expect("store shadow lock") = Some(Arc::clone(&shadow));
        Ok(shadow)
    }

    /// Bound the resident deserialized payload bytes (0 = unlimited). Applied after
    /// every lazy load; the just-loaded payload itself is never evicted.
    pub fn set_payload_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        if bytes > 0 {
            self.enforce_budget("");
        }
    }

    /// Total `payload_len` bytes of currently loaded disk-backed payloads. An
    /// entry whose payload is being deserialized right now (mutex held) counts as
    /// resident — it is about to be — without blocking behind the load.
    pub fn loaded_payload_bytes(&self) -> u64 {
        let entries = self.entries.read().expect("store lock");
        entries
            .values()
            .filter(|e| e.path.is_some() && is_resident(e))
            .map(|e| e.meta.payload_len)
            .sum()
    }

    /// Drop least-recently-used disk-backed payloads until the budget holds,
    /// keeping `keep` resident. Entries whose payload is being loaded right now
    /// (mutex held) are skipped — they are in use by definition.
    fn enforce_budget(&self, keep: &str) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let entries: Vec<Arc<StoredModel>> = {
            let map = self.entries.read().expect("store lock");
            map.values().cloned().collect()
        };
        let mut resident: Vec<&Arc<StoredModel>> = entries
            .iter()
            .filter(|e| e.path.is_some() && e.name != keep && is_resident(e))
            .collect();
        // Oldest stamp first = least recently used first.
        resident.sort_by_key(|e| e.last_used.load(Ordering::Relaxed));
        let mut total = self.loaded_payload_bytes();
        for victim in resident {
            if total <= budget {
                break;
            }
            if let Ok(mut slot) = victim.model.try_lock() {
                if slot.take().is_some() {
                    total = total.saturating_sub(victim.meta.payload_len);
                }
            }
        }
    }

    /// Re-scan the directory this store was opened over: index new `.mvm` files,
    /// re-read the header (and drop the cached payload) of files whose mtime, size
    /// or persisted checksum changed, and remove entries whose backing file
    /// vanished. In-memory
    /// [`ModelStore::insert`] entries are untouched; corrupt files are skipped so a
    /// half-written model cannot take down a live server. Returns what changed.
    pub fn rescan(&self) -> Result<RescanReport> {
        let dir = match self.dir.read().expect("store dir lock").clone() {
            Some(dir) => dir,
            None => return Ok(RescanReport::default()),
        };
        let mut report = RescanReport::default();
        let mut on_disk = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXTENSION) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            on_disk.insert(name.to_string());
            let existing = self.entries.read().expect("store lock").get(name).cloned();
            match existing {
                // A name claimed by an in-memory insert keeps serving the inserted
                // model; the file only takes over once the entry is removed.
                Some(e) if e.path.is_none() => {}
                Some(e) => {
                    // mtime + size alone miss an in-place same-size rewrite that
                    // lands within the filesystem's timestamp granularity (exactly
                    // what an atomic model swap produces), so when they look
                    // unchanged the persisted CRC breaks the tie via a cheap
                    // header-only read.
                    let changed = match std::fs::metadata(&path) {
                        Ok(m) => {
                            m.len() != e.file_len
                                || m.modified().ok() != e.mtime
                                || header_checksum(&path).is_some_and(|crc| crc != e.meta.checksum)
                        }
                        Err(_) => false,
                    };
                    if changed {
                        if self.index_file(&path).is_ok() {
                            report.reloaded += 1;
                        } else {
                            report.corrupt_skipped += 1;
                            self.rescan_corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                None => {
                    if self.index_file(&path).is_ok() {
                        report.added += 1;
                    } else {
                        report.corrupt_skipped += 1;
                        self.rescan_corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // Drop disk-backed entries whose file is gone.
        let stale: Vec<String> = {
            let map = self.entries.read().expect("store lock");
            map.values()
                .filter(|e| {
                    e.path.as_deref().and_then(Path::parent) == Some(dir.as_path())
                        && !on_disk.contains(&e.name)
                })
                .map(|e| e.name.clone())
                .collect()
        };
        let mut map = self.entries.write().expect("store lock");
        for name in stale {
            if map.remove(&name).is_some() {
                report.removed += 1;
                self.rescan_vanished.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(report)
    }

    /// The registry used to load models.
    pub fn registry(&self) -> &EstimatorRegistry {
        &self.registry
    }
}

/// Payload checksum from a header-only read; `None` when the file is unreadable
/// or mid-write (rescan treats that as "unchanged" rather than fatal).
fn header_checksum(path: &Path) -> Option<u32> {
    let mut reader = BufReader::new(std::fs::File::open(path).ok()?);
    persist::read_meta(&mut reader).ok().map(|m| m.checksum)
}

/// Non-blocking residency probe for budget accounting: a held mutex means the
/// payload is mid-load (or in use) — treat it as resident rather than waiting
/// behind a potentially multi-second deserialization.
fn is_resident(entry: &StoredModel) -> bool {
    match entry.model.try_lock() {
        Ok(slot) => slot.is_some(),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{secstr_dataset, SecStrConfig};
    use linalg::Matrix;
    use mvcore::FitSpec;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 30,
            seed: 9,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcca-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_index_and_lazy_load() {
        let dir = tmp_dir("roundtrip");
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(4);
        let model = registry.fit("PCA", &views, &spec).unwrap();
        let expected = model.transform(&views).unwrap();

        let store = ModelStore::new(EstimatorRegistry::with_builtin());
        store.save(&dir, "pca-demo", model.as_ref()).unwrap();

        // A second store discovers the file by scanning the directory.
        let store2 = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        assert_eq!(store2.names(), vec!["pca-demo".to_string()]);
        let entry = store2.entry("pca-demo").unwrap();
        assert_eq!(entry.meta().method, "PCA");
        assert_ne!(entry.meta().checksum, 0);
        assert!(
            !entry.is_loaded(),
            "metadata read must not load the payload"
        );

        let loaded = store2.get("pca-demo").unwrap();
        assert!(entry.is_loaded());
        let z = loaded.transform(&views).unwrap();
        assert_eq!(z, expected);

        // Unknown names list what is available.
        let err = store2.get("nope").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("pca-demo"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_serves_in_memory_models() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry.fit("CAT", &views, &FitSpec::with_rank(2)).unwrap();
        let store = ModelStore::new(EstimatorRegistry::with_builtin());
        store.insert("cat", model);
        let entry = store.entry("cat").unwrap();
        assert_eq!(entry.meta().method, "CAT");
        assert!(entry.is_loaded());
        assert!(store.get("cat").unwrap().transform(&views).is_ok());
    }

    #[test]
    fn rescan_picks_up_new_changed_and_removed_files() {
        let dir = tmp_dir("rescan");
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(11);
        let pca = registry.fit("PCA", &views, &spec).unwrap();
        let cat = registry.fit("CAT", &views, &spec).unwrap();

        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        assert!(store.names().is_empty());

        // New file appears → rescan makes it servable without a restart.
        let writer = ModelStore::new(EstimatorRegistry::with_builtin());
        writer.save(&dir, "pca", pca.as_ref()).unwrap();
        let report = store.rescan().unwrap();
        assert_eq!((report.added, report.removed, report.reloaded), (1, 0, 0));
        let first = store.get("pca").unwrap().transform(&views).unwrap();
        assert_eq!(first, pca.transform(&views).unwrap());

        // File replaced by a different model → header re-read, payload reloaded.
        // (Force a different mtime fingerprint: some filesystems have coarse
        // timestamps, but the byte length differs between PCA and CAT states.)
        writer.save(&dir, "pca", cat.as_ref()).unwrap();
        let report = store.rescan().unwrap();
        assert_eq!((report.added, report.removed, report.reloaded), (0, 0, 1));
        let entry = store.entry("pca").unwrap();
        assert_eq!(entry.meta().method, "CAT");
        assert!(!entry.is_loaded(), "stale payload must be dropped");
        let swapped = store.get("pca").unwrap().transform(&views).unwrap();
        assert_eq!(swapped, cat.transform(&views).unwrap());

        // Unchanged files are not touched.
        let report = store.rescan().unwrap();
        assert_eq!(report, crate::wire::RescanReport::default());
        assert!(store.entry("pca").unwrap().is_loaded());

        // File removed → entry dropped.
        std::fs::remove_file(dir.join("pca.mvm")).unwrap();
        let report = store.rescan().unwrap();
        assert_eq!((report.added, report.removed, report.reloaded), (0, 1, 0));
        assert!(store.entry("pca").is_err());

        // Corrupt files are skipped, not fatal — and the skip is counted, both
        // in the report and in the store's lifetime health counters.
        std::fs::write(dir.join("junk.mvm"), b"garbage").unwrap();
        let report = store.rescan().unwrap();
        assert_eq!(
            (report.added, report.removed, report.reloaded),
            (0, 0, 0),
            "corrupt file must not index"
        );
        assert_eq!(report.corrupt_skipped, 1);
        let counter = |name: &str| {
            store
                .counters()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap()
        };
        assert_eq!(counter("store/rescan_corrupt_skipped"), 1);
        // "pca" vanished earlier in this test; the lifetime counter saw it.
        assert_eq!(counter("store/rescan_vanished"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rescan_detects_same_size_rewrite_within_mtime_granularity() {
        let dir = tmp_dir("crc");
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(3);
        let views_a = fixture_views();
        // Same shapes, different values → same payload length, different CRC.
        let data_b = secstr_dataset(&SecStrConfig {
            n_instances: 30,
            seed: 10,
            difficulty: 0.8,
        });
        let views_b: Vec<Matrix> = data_b
            .views()
            .iter()
            .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
            .collect();
        let a = registry.fit("PCA", &views_a, &spec).unwrap();
        let b = registry.fit("PCA", &views_b, &spec).unwrap();

        let writer = ModelStore::new(EstimatorRegistry::with_builtin());
        writer.save(&dir, "m", a.as_ref()).unwrap();
        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        store.get("m").unwrap();
        let path = dir.join("m.mvm");
        let before = std::fs::metadata(&path).unwrap();
        let old_mtime = before.modified().unwrap();

        writer.save(&dir, "m", b.as_ref()).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            before.len(),
            "fixture models must serialize to the same byte length"
        );
        // Pin the mtime back so size + mtime alone cannot reveal the rewrite.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(old_mtime))
            .unwrap();
        drop(f);

        let report = store.rescan().unwrap();
        assert_eq!((report.added, report.removed, report.reloaded), (0, 0, 1));
        assert_eq!(
            store.get("m").unwrap().transform(&views_b).unwrap(),
            b.transform(&views_b).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_budget_evicts_least_recently_used() {
        let dir = tmp_dir("evict");
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(3);
        let writer = ModelStore::new(EstimatorRegistry::with_builtin());
        for name in ["a", "b", "c"] {
            let model = registry.fit("PCA", &views, &spec).unwrap();
            writer.save(&dir, name, model.as_ref()).unwrap();
        }
        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        let per_payload = store.entry("a").unwrap().meta().payload_len;
        assert!(per_payload > 0);

        // Budget for two payloads: loading a third evicts the least recently used.
        store.set_payload_budget(2 * per_payload);
        store.get("a").unwrap();
        store.get("b").unwrap();
        assert_eq!(store.loaded_payload_bytes(), 2 * per_payload);
        store.get("a").unwrap(); // refresh a → b is now the LRU
        store.get("c").unwrap();
        assert!(store.entry("a").unwrap().is_loaded());
        assert!(
            !store.entry("b").unwrap().is_loaded(),
            "LRU must be evicted"
        );
        assert!(store.entry("c").unwrap().is_loaded());
        assert_eq!(store.loaded_payload_bytes(), 2 * per_payload);

        // An evicted payload transparently reloads on the next request.
        assert!(store.get("b").unwrap().transform(&views).is_ok());

        // In-memory inserts are never evicted (there is no file to reload from).
        let model = registry.fit("CAT", &views, &spec).unwrap();
        store.insert("mem", model);
        store.set_payload_budget(1);
        store.get("a").unwrap();
        assert!(store.entry("mem").unwrap().is_loaded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f32_shadow_is_built_once_and_dropped_on_reload() {
        let dir = tmp_dir("shadow");
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(5);
        let pca = registry.fit("PCA", &views, &spec).unwrap();
        let writer = ModelStore::new(EstimatorRegistry::with_builtin());
        writer.save(&dir, "m", pca.as_ref()).unwrap();

        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        let shadow = store.f32_shadow("m").unwrap();
        let view = shadow.view(0).expect("PCA exposes a linear projection");
        let proj = store.get("m").unwrap();
        let proj = proj.view_projection(0).unwrap();
        assert_eq!(view.weights.shape(), proj.weights.shape());
        assert_eq!(
            view.weights.as_slice()[0],
            proj.weights.as_slice()[0] as f32
        );
        assert!(shadow.memory_bytes() > 0);
        // Cached: the same Arc comes back.
        assert!(Arc::ptr_eq(&shadow, &store.f32_shadow("m").unwrap()));

        // A reload (changed file) replaces the entry, and with it the shadow.
        let other = registry
            .fit("PCA", &fixture_views(), &spec.clone().seed(6))
            .unwrap();
        writer.save(&dir, "m", other.as_ref()).unwrap();
        store.rescan().unwrap();
        let fresh = store.f32_shadow("m").unwrap();
        assert!(
            !Arc::ptr_eq(&shadow, &fresh),
            "stale shadow must not survive"
        );

        // A multi-candidate model yields a shadow whose views are all None.
        let cat = registry.fit("CCA (BST)", &views, &spec).unwrap();
        store.insert("pairwise", cat);
        let none = store.f32_shadow("pairwise").unwrap();
        assert!((0..4).all(|v| none.view(v).is_none()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_model_files_are_skipped_and_corrupt_headers_error() {
        let dir = tmp_dir("corrupt");
        std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
        let store = ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap();
        assert!(store.names().is_empty());

        std::fs::write(dir.join("bad.mvm"), b"not a model at all").unwrap();
        let err = ModelStore::open(EstimatorRegistry::with_builtin(), &dir)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
