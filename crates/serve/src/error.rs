//! The serving-stack error type.

use std::fmt;

/// Errors produced by the model store, batch engine, protocol codec and server.
#[derive(Debug)]
pub enum ServeError {
    /// A model name was not present in the store.
    UnknownModel {
        /// The requested name.
        name: String,
        /// The names the store does know.
        known: Vec<String>,
    },
    /// Loading, saving or transforming through a model failed.
    Core(mvcore::CoreError),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A frame or message violated the wire protocol.
    Protocol(String),
    /// The remote side reported an error for our request.
    Remote(String),
    /// The batch engine is shutting down and dropped the request.
    EngineStopped,
    /// Every shard that could serve the request is dead.
    NoLiveShards,
    /// Admission control shed the request: a queue or in-flight cap was hit.
    /// The work was rejected *before* any computation — retrying elsewhere (or
    /// later) is safe and encouraged.
    Overloaded(String),
    /// The request's deadline passed before the work ran; the answer would have
    /// been dead on arrival, so it was never computed.
    DeadlineExceeded(String),
}

/// How a failed request should be treated by a retrying caller (the router, or
/// any client wrapping the serving tier). Derived from [`ServeError::class`] so
/// every layer agrees on one taxonomy instead of ad-hoc `matches!` lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The transport or peer process failed (I/O error, protocol violation,
    /// engine shut down). The request may never have been seen: fail the shard
    /// over and retry elsewhere, and mark the source unhealthy.
    Transport,
    /// The peer is healthy but shed the request under load. Retry elsewhere
    /// (subject to the retry budget) but do **not** mark the source dead —
    /// overload is not failure.
    Overload,
    /// Retrying cannot help: the request itself is bad (unknown model,
    /// malformed input), the deadline already passed, or every alternative is
    /// exhausted. Fail fast to the caller.
    Terminal,
}

impl ServeError {
    /// Classify this error for retry/failover decisions.
    pub fn class(&self) -> ErrorClass {
        match self {
            ServeError::Io(_) | ServeError::Protocol(_) | ServeError::EngineStopped => {
                ErrorClass::Transport
            }
            ServeError::Overloaded(_) => ErrorClass::Overload,
            ServeError::UnknownModel { .. }
            | ServeError::Core(_)
            | ServeError::Remote(_)
            | ServeError::NoLiveShards
            | ServeError::DeadlineExceeded(_) => ErrorClass::Terminal,
        }
    }

    /// Whether a retry (on another shard, or after a backoff) could succeed.
    pub fn is_retryable(&self) -> bool {
        self.class() != ErrorClass::Terminal
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { name, known } => {
                write!(f, "unknown model {name:?}; available: {}", known.join(", "))
            }
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "I/O failure: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
            ServeError::EngineStopped => write!(f, "batch engine stopped"),
            ServeError::NoLiveShards => write!(f, "no live shard can serve the request"),
            ServeError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            ServeError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvcore::CoreError> for ServeError {
    fn from(e: mvcore::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::UnknownModel {
            name: "tcca-prod".into(),
            known: vec!["a".into(), "b".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("tcca-prod") && msg.contains("a, b"), "{msg}");
        assert!(ServeError::EngineStopped.to_string().contains("stopped"));
        let e: ServeError = mvcore::CoreError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(ServeError::Overloaded("q full".into())
            .to_string()
            .contains("overloaded"));
        assert!(ServeError::DeadlineExceeded("late".into())
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn taxonomy_splits_retryable_from_terminal() {
        use std::io;
        let transport = [
            ServeError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "rst")),
            ServeError::Protocol("junk".into()),
            ServeError::EngineStopped,
        ];
        for e in transport {
            assert_eq!(e.class(), ErrorClass::Transport, "{e}");
            assert!(e.is_retryable());
        }
        let overload = ServeError::Overloaded("queue full".into());
        assert_eq!(overload.class(), ErrorClass::Overload);
        assert!(overload.is_retryable());
        let terminal = [
            ServeError::UnknownModel {
                name: "m".into(),
                known: vec![],
            },
            ServeError::Remote("bad input".into()),
            ServeError::NoLiveShards,
            ServeError::DeadlineExceeded("late".into()),
        ];
        for e in terminal {
            assert_eq!(e.class(), ErrorClass::Terminal, "{e}");
            assert!(!e.is_retryable());
        }
    }
}
