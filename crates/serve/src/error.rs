//! The serving-stack error type.

use std::fmt;

/// Errors produced by the model store, batch engine, protocol codec and server.
#[derive(Debug)]
pub enum ServeError {
    /// A model name was not present in the store.
    UnknownModel {
        /// The requested name.
        name: String,
        /// The names the store does know.
        known: Vec<String>,
    },
    /// Loading, saving or transforming through a model failed.
    Core(mvcore::CoreError),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A frame or message violated the wire protocol.
    Protocol(String),
    /// The remote side reported an error for our request.
    Remote(String),
    /// The batch engine is shutting down and dropped the request.
    EngineStopped,
    /// Every shard that could serve the request is dead.
    NoLiveShards,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { name, known } => {
                write!(f, "unknown model {name:?}; available: {}", known.join(", "))
            }
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "I/O failure: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
            ServeError::EngineStopped => write!(f, "batch engine stopped"),
            ServeError::NoLiveShards => write!(f, "no live shard can serve the request"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvcore::CoreError> for ServeError {
    fn from(e: mvcore::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::UnknownModel {
            name: "tcca-prod".into(),
            known: vec!["a".into(), "b".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("tcca-prod") && msg.contains("a, b"), "{msg}");
        assert!(ServeError::EngineStopped.to_string().contains("stopped"));
        let e: ServeError = mvcore::CoreError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("x"));
    }
}
