//! The binary wire protocol spoken by [`crate::Server`] and [`crate::Client`].
//!
//! Every message travels in one **frame**: a `u32` little-endian payload length
//! followed by that many payload bytes (capped at 1 GiB — a corrupt length must not
//! drive a huge allocation). The payload's first byte is an opcode; matrices are
//! `u64 rows, u64 cols` followed by row-major IEEE-754 `f64` bit patterns, exactly
//! like the `MVTC` persistence format, so embeddings survive the wire bit-for-bit.
//!
//! Requests:
//!
//! | opcode | message | layout |
//! |---|---|---|
//! | 1 | `Transform` | name (`u32` + UTF-8), `u32` input count, matrices |
//! | 2 | `ListModels` | — |
//! | 3 | `Ping` | — |
//!
//! Responses:
//!
//! | opcode | message | layout |
//! |---|---|---|
//! | 0 | `Embedding` | one matrix |
//! | 1 | `Error` | message (`u32` + UTF-8) |
//! | 2 | `Models` | `u32` count, then per model: name, method, `u64` dim, `u32` views, `u8` kind |
//! | 3 | `Pong` | — |

use crate::{Result, ServeError};
use linalg::Matrix;
use mvcore::InputKind;
use std::io::{Read, Write};

/// Maximum accepted frame payload (1 GiB).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// A request from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Project instances through the named model.
    Transform {
        /// Store name of the model.
        model: String,
        /// One matrix per view (features × instances) or per kernel block
        /// (instances × train instances), matching the model's input kind.
        inputs: Vec<Matrix>,
    },
    /// Ask for the store's model catalog.
    ListModels,
    /// Liveness probe.
    Ping,
}

/// Catalog entry returned by [`Response::Models`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Store name (file stem).
    pub name: String,
    /// Method display name (registry key).
    pub method: String,
    /// Embedding width.
    pub dim: usize,
    /// Number of input matrices `transform` expects.
    pub num_views: usize,
    /// Input kind expected by `transform`.
    pub input_kind: InputKind,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The embedding produced by a `Transform` request.
    Embedding(Matrix),
    /// The request failed; human-readable reason.
    Error(String),
    /// The store catalog.
    Models(Vec<ModelInfo>),
    /// Reply to `Ping`.
    Pong,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    push_u64(out, m.rows() as u64);
    push_u64(out, m.cols() as u64);
    out.reserve(m.as_slice().len() * 8);
    for &x in m.as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServeError::Protocol(format!(
                "frame truncated while reading {what}"
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| ServeError::Protocol(format!("{what} is not valid UTF-8")))
    }

    fn matrix(&mut self, what: &str) -> Result<Matrix> {
        let rows = self.u64(what)? as usize;
        let cols = self.u64(what)? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n as u64 * 8 <= u64::from(MAX_FRAME_LEN))
            .ok_or_else(|| ServeError::Protocol(format!("{what} shape is absurd")))?;
        let bytes = self.take(n * 8, what)?;
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Protocol(format!("bad {what}: {e}")))
    }

    fn finish(self, what: &str) -> Result<()> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.data.len() - self.pos
            )))
        }
    }
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Transform { model, inputs } => {
                out.push(1);
                push_str(&mut out, model);
                push_u32(&mut out, inputs.len() as u32);
                for m in inputs {
                    push_matrix(&mut out, m);
                }
            }
            Request::ListModels => out.push(2),
            Request::Ping => out.push(3),
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut c = Cursor {
            data: payload,
            pos: 0,
        };
        let req = match c.u8("request opcode")? {
            1 => {
                let model = c.string("model name")?;
                let count = c.u32("input count")? as usize;
                let inputs = (0..count)
                    .map(|_| c.matrix("input matrix"))
                    .collect::<Result<Vec<_>>>()?;
                Request::Transform { model, inputs }
            }
            2 => Request::ListModels,
            3 => Request::Ping,
            op => return Err(ServeError::Protocol(format!("unknown request opcode {op}"))),
        };
        c.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Embedding(m) => {
                out.push(0);
                push_matrix(&mut out, m);
            }
            Response::Error(msg) => {
                out.push(1);
                push_str(&mut out, msg);
            }
            Response::Models(models) => {
                out.push(2);
                push_u32(&mut out, models.len() as u32);
                for info in models {
                    push_str(&mut out, &info.name);
                    push_str(&mut out, &info.method);
                    push_u64(&mut out, info.dim as u64);
                    push_u32(&mut out, info.num_views as u32);
                    out.push(match info.input_kind {
                        InputKind::Views => 0,
                        InputKind::Kernels => 1,
                    });
                }
            }
            Response::Pong => out.push(3),
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut c = Cursor {
            data: payload,
            pos: 0,
        };
        let resp = match c.u8("response opcode")? {
            0 => Response::Embedding(c.matrix("embedding")?),
            1 => Response::Error(c.string("error message")?),
            2 => {
                let count = c.u32("model count")? as usize;
                let mut models = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = c.string("model name")?;
                    let method = c.string("method name")?;
                    let dim = c.u64("dim")? as usize;
                    let num_views = c.u32("num_views")? as usize;
                    let input_kind = match c.u8("input kind")? {
                        0 => InputKind::Views,
                        1 => InputKind::Kernels,
                        k => {
                            return Err(ServeError::Protocol(format!(
                                "unknown input-kind byte {k}"
                            )))
                        }
                    };
                    models.push(ModelInfo {
                        name,
                        method,
                        dim,
                        num_views,
                        input_kind,
                    });
                }
                Response::Models(models)
            }
            3 => Response::Pong,
            op => {
                return Err(ServeError::Protocol(format!(
                    "unknown response opcode {op}"
                )))
            }
        };
        c.finish("response")?;
        Ok(resp)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. Returns `None` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut dyn Read) -> Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Protocol(
                    "connection closed mid frame header".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Protocol("connection closed mid frame payload".into())
        } else {
            ServeError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[vec![1.5, -2.0, 0.0], vec![f64::MIN_POSITIVE, 7.0, -0.0]]).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Transform {
                model: "tcca-prod".into(),
                inputs: vec![sample_matrix(), Matrix::zeros(1, 3)],
            },
            Request::ListModels,
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Embedding(sample_matrix()),
            Response::Error("boom".into()),
            Response::Models(vec![ModelInfo {
                name: "m".into(),
                method: "KTCCA".into(),
                dim: 6,
                num_views: 3,
                input_kind: InputKind::Kernels,
            }]),
            Response::Pong,
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Length field says 8 bytes but only 3 follow.
        let mut buf = 8u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut buf.as_slice()).is_err());

        // Oversized length is refused before allocating.
        let buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut buf.as_slice()).is_err());

        // Unknown opcode and trailing junk.
        assert!(Request::decode(&[99]).is_err());
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
    }
}
