//! The binary wire protocol spoken by [`crate::Server`] and [`crate::Client`].
//!
//! Every message travels in one **frame**: a `u32` little-endian payload length
//! followed by that many payload bytes (capped at 1 GiB — a corrupt length must not
//! drive a huge allocation). The payload's first byte is an opcode; matrices are
//! `u64 rows, u64 cols` followed by row-major IEEE-754 `f64` bit patterns, exactly
//! like the `MVTC` persistence format, so embeddings survive the wire bit-for-bit.
//!
//! Requests:
//!
//! | opcode | message | layout |
//! |---|---|---|
//! | 1 | `Transform` | name (`u32` + UTF-8), `u32` input count, matrices |
//! | 2 | `ListModels` | — |
//! | 3 | `Ping` | — |
//! | 4 | `Outputs` | name, `u32` input count, matrices (v2) |
//! | 5 | `TransformView` | name, `u32` view index, one matrix (v2) |
//! | 6 | `Rescan` | — (v2) |
//! | 7 | `Stats` | — (v3) |
//! | 8 | `Refit` | — (v3) |
//! | 9 | `AddShard` | address (`u32` + UTF-8) (v5) |
//! | 10 | `RemoveShard` | `u64` shard id (v5) |
//! | 11 | `ClusterInfo` | — (v5) |
//! | 12 | `TransformView` + precision | name, `u32` view index, `u8` precision, one matrix (v6) |
//! | 16 | `Tagged` | `u64` request id, then a nested untagged request (v2) |
//! | 17 | `Tagged` + deadline | `u64` request id, `u32` deadline ms, then a nested untagged request (v4) |
//!
//! Responses:
//!
//! | opcode | message | layout |
//! |---|---|---|
//! | 0 | `Embedding` | one matrix |
//! | 1 | `Error` | message (`u32` + UTF-8) |
//! | 2 | `Models` | `u32` count, then per model: name, method, `u64` dim, `u32` views, `u8` kind, `u64` version (v3) |
//! | 3 | `Pong` | — |
//! | 4 | `Outputs` | `u32` count, then per candidate: label, `u8` kind, one matrix (v2) |
//! | 5 | `Rescanned` | `u32` added, `u32` removed, `u32` reloaded, `u32` corrupt skipped (v4) |
//! | 6 | `Stats` | `u32` count, then per counter: name (`u32` + UTF-8), `u64` value (v3) |
//! | 7 | `Overloaded` | reason (`u32` + UTF-8) (v4) |
//! | 8 | `DeadlineExceeded` | reason (`u32` + UTF-8) (v4) |
//! | 9 | `Cluster` | `u32` count, then per shard: `u64` id, label, `u8` flags (bit 0 alive, bit 1 draining), `u64` in-flight, `u64` routed (v5) |
//! | 16 | `Tagged` | `u64` request id, then a nested untagged response (v2) |
//!
//! ## Protocol v2: request ids and pipelining
//!
//! Opcodes 0–3 are **protocol v1** and keep working unchanged — a v1 client talking
//! to a v2 server sees exactly the v1 behaviour (one untagged reply per untagged
//! request, in request order). Protocol v2 adds the `Tagged` envelope: a client may
//! send many tagged requests without waiting, and the server replies with the *same
//! id* wrapped around the reply — **possibly out of request order** (cheap inline
//! ops like `Ping` overtake in-flight transforms, and transforms for different
//! models complete independently). Clients match replies to requests by id. The
//! nested message may be any untagged request; nesting a `Tagged` inside a `Tagged`
//! is a protocol violation.
//!
//! ## Protocol v3: live refresh
//!
//! v3 adds the observability and model-refresh surface of the streaming-fit
//! subsystem: `Stats` returns the server's counters as name/value pairs (batch
//! engine counters plus, when a trainer is attached, `trainer/*` counters), and
//! `Refit` asks the serving tier to refresh its refreshable models from accumulated
//! traffic — the trigger is asynchronous, so the reply carries the counters as of
//! the trigger; poll `Stats` to watch the refit land. Each `Models` catalog entry
//! now ends with the model's lineage version (`0` for files that predate lineage).
//!
//! ## Protocol v4: overload protection and deadlines
//!
//! v4 makes rejection **in-band and typed**, never silent. A request shed by
//! admission control (a full queue, a per-model cap, a per-connection in-flight
//! cap) is answered with `Overloaded` rather than a generic `Error`, so callers
//! can distinguish *retry elsewhere* from *the request itself is bad*. A request
//! whose deadline passed before it ran is answered with `DeadlineExceeded` — the
//! server refuses to compute dead answers. Deadlines travel in the tagged
//! envelope: opcode 17 is a `Tagged` whose id is followed by a `u32` budget in
//! milliseconds, relative to receipt (absolute clocks don't survive the wire).
//! Opcode 16 is unchanged, so v2/v3 clients keep working byte-for-byte.
//! `Rescanned` replies grow a fourth counter: files skipped because their header
//! failed to parse — previously silent degradation.
//!
//! ## Protocol v5: the live control plane
//!
//! v5 adds runtime shard membership. `AddShard` asks a router-backed server to
//! validate (connect + ping) and admit a new remote shard; `RemoveShard` drains
//! a shard — it stops receiving new placements immediately, in-flight work
//! completes, and only then is it dropped from the table; `ClusterInfo` reads
//! the membership table. All three reply with `Cluster`: the post-op shard
//! list, each entry carrying the shard's stable id (ids are never reused), its
//! label/address, alive and draining flags, its current in-flight count and
//! how many requests have been routed to it. Sent to a server without a shard
//! table (a plain engine-backed `tcca_serve serve`), the ops are answered with
//! an in-band `Error` — the connection survives.
//!
//! ## Protocol v6: per-request transform precision
//!
//! v6 lets a client ask for the reduced-precision serving fast path on a
//! per-request basis. `TransformView` grows a [`Precision`] field: requests at
//! the default [`Precision::F64`] still encode as opcode 5 — byte-for-byte the
//! v2 layout, so v2–v5 peers interoperate unchanged — while [`Precision::F32`]
//! encodes as the new opcode 12, which inserts one `u8` precision byte between
//! the view index and the matrix. Matrices always travel as `f64` bit patterns
//! regardless of precision: the field selects the *compute* path (the engine's
//! cached `f32` shadow of the factor matrices), not the wire encoding. Servers
//! without an `f32` shadow for the model silently serve the `f64` path; the
//! reply shape is identical either way.

use crate::{Result, ServeError};
use linalg::Matrix;
use mvcore::InputKind;
use std::io::{Read, Write};

/// Maximum accepted frame payload (1 GiB).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Opcode of the v2 `Tagged` envelope (shared by requests and responses).
pub const TAGGED_OPCODE: u8 = 16;

/// Opcode of the v4 deadline-carrying `Tagged` request envelope.
pub const TAGGED_DEADLINE_OPCODE: u8 = 17;

/// Arithmetic precision a `TransformView` request asks the engine to compute in
/// (v6). Inputs and replies are `f64` on the wire either way; `F32` routes the
/// projection through the engine's cached single-precision shadow of the factor
/// matrices — roughly half the memory traffic, bounded relative error (see
/// `linalg::ColsView::shifted_t_matmul_f32`) — when the model exposes one, and
/// falls back to the bit-exact `f64` path when it does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision — the default, bit-identical to every prior
    /// protocol version.
    #[default]
    F64,
    /// Opt-in single-precision compute path.
    F32,
}

/// A request from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Project instances through the named model.
    Transform {
        /// Store name of the model.
        model: String,
        /// One matrix per view (features × instances) or per kernel block
        /// (instances × train instances), matching the model's input kind.
        inputs: Vec<Matrix>,
    },
    /// Ask for the store's model catalog.
    ListModels,
    /// Liveness probe.
    Ping,
    /// All named candidate representations of the given instances (v2). This is the
    /// serving path for multi-candidate methods (BSF/BSK/AVG, pairwise CCA/KCCA)
    /// whose `transform` rejects by design.
    Outputs {
        /// Store name of the model.
        model: String,
        /// One matrix per view or kernel block, as for `Transform`.
        inputs: Vec<Matrix>,
    },
    /// Project instances of a *single* view through the model's per-view projection
    /// (v2). Batched without stitching the other `m − 1` views.
    TransformView {
        /// Store name of the model.
        model: String,
        /// Which view the matrix belongs to.
        view: u32,
        /// The view matrix (features × instances, or a kernel block).
        input: Matrix,
        /// Requested compute precision (v6). [`Precision::F64`] encodes as the
        /// v2 opcode 5 layout; [`Precision::F32`] as opcode 12.
        precision: Precision,
    },
    /// Re-scan the server's model directory for new/changed/removed `.mvm` files
    /// (v2). A router forwards this to every live shard.
    Rescan,
    /// Ask for the server's counters (v3): batch-engine statistics plus trainer
    /// counters when a live-refresh trainer is attached. A router sums counters
    /// across its live shards.
    Stats,
    /// Trigger a model refresh from accumulated live-traffic statistics (v3). The
    /// trigger is asynchronous: the reply is the counter snapshot at trigger time.
    Refit,
    /// Admit a new remote shard at the given address (v5). The server validates
    /// the address with a connect + ping before it joins the rendezvous table;
    /// the reply is the updated cluster snapshot.
    AddShard {
        /// `host:port` of a running serving endpoint.
        addr: String,
    },
    /// Drain and remove the shard with this id (v5). The shard stops receiving
    /// new placements immediately; the reply is sent once in-flight work has
    /// completed (or the drain timeout expired) and the shard left the table.
    RemoveShard {
        /// The shard's stable id, as reported by `ClusterInfo`.
        shard: u64,
    },
    /// Read the cluster membership table (v5).
    ClusterInfo,
    /// The v2 envelope: an id the server echoes around its reply, enabling
    /// pipelining and out-of-order completion.
    Tagged {
        /// Client-chosen request id.
        id: u64,
        /// Remaining time budget in milliseconds, relative to server receipt
        /// (v4). `None` encodes as the v2 opcode 16 envelope; `Some` as opcode
        /// 17. Work still queued when the budget runs out is answered with
        /// [`Response::DeadlineExceeded`] instead of being computed.
        deadline_ms: Option<u32>,
        /// The wrapped (untagged) request.
        inner: Box<Request>,
    },
}

/// Catalog entry returned by [`Response::Models`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Store name (file stem).
    pub name: String,
    /// Method display name (registry key).
    pub method: String,
    /// Embedding width.
    pub dim: usize,
    /// Number of input matrices `transform` expects.
    pub num_views: usize,
    /// Input kind expected by `transform`.
    pub input_kind: InputKind,
    /// Lineage version of the backing file (v3): `0` for freshly fitted or
    /// pre-lineage models, incremented by every live refresh.
    pub version: u64,
}

/// Whether a served candidate is an embedding or a precomputed distance matrix
/// (the wire-level mirror of `mvcore::Output`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// An `N × dim` embedding.
    Embedding,
    /// An `N × N` squared-distance matrix.
    Distances,
}

/// One labelled candidate in a [`Response::Outputs`] reply.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedOutput {
    /// Model-provided candidate name (`view0`, `pair(0,2)`, …).
    pub label: String,
    /// Embedding or distance matrix.
    pub kind: CandidateKind,
    /// The candidate's values.
    pub matrix: Matrix,
}

/// Counters reported by a [`Response::Rescanned`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RescanReport {
    /// Files indexed for the first time.
    pub added: usize,
    /// Entries dropped because their backing file vanished.
    pub removed: usize,
    /// Entries whose file changed on disk (header re-read, cached payload dropped).
    pub reloaded: usize,
    /// Files skipped because their header failed to parse (v4). Non-zero means
    /// the directory holds models the store silently cannot serve.
    pub corrupt_skipped: usize,
}

impl RescanReport {
    /// Element-wise sum (a router accumulates per-shard reports).
    pub fn merge(&mut self, other: RescanReport) {
        self.added += other.added;
        self.removed += other.removed;
        self.reloaded += other.reloaded;
        self.corrupt_skipped += other.corrupt_skipped;
    }
}

/// One shard's entry in a [`Response::Cluster`] membership snapshot (v5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Stable shard id. Ids are assigned once and never reused, so a client
    /// holding an id across a remove/add cycle can never address the wrong
    /// shard.
    pub id: u64,
    /// Human-readable label: `local-N` for in-process shards, the socket
    /// address for remote ones.
    pub label: String,
    /// Whether the shard is currently considered live by the health tracker.
    pub alive: bool,
    /// Whether the shard is draining: excluded from new placements, finishing
    /// in-flight work before removal.
    pub draining: bool,
    /// Requests currently in flight against this shard.
    pub inflight: u64,
    /// Requests routed to this shard since it joined.
    pub routed: u64,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The embedding produced by a `Transform` request.
    Embedding(Matrix),
    /// The request failed; human-readable reason.
    Error(String),
    /// The store catalog.
    Models(Vec<ModelInfo>),
    /// Reply to `Ping`.
    Pong,
    /// The named candidates produced by an `Outputs` request (v2).
    Outputs(Vec<NamedOutput>),
    /// Reply to `Rescan` (v2).
    Rescanned(RescanReport),
    /// Reply to `Stats` and `Refit` (v3): counter name/value pairs.
    Stats(Vec<(String, u64)>),
    /// Admission control shed the request (v4); human-readable reason. The
    /// request was rejected before any computation — retrying elsewhere is safe.
    Overloaded(String),
    /// The request's deadline passed before the work ran (v4); reason.
    DeadlineExceeded(String),
    /// Cluster membership snapshot (v5): the reply to `ClusterInfo` and to a
    /// completed `AddShard` / `RemoveShard`.
    Cluster(Vec<ShardInfo>),
    /// The v2 envelope echoing a `Tagged` request's id.
    Tagged {
        /// The id of the request this reply answers.
        id: u64,
        /// The wrapped (untagged) reply.
        inner: Box<Response>,
    },
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    push_u64(out, m.rows() as u64);
    push_u64(out, m.cols() as u64);
    out.reserve(m.as_slice().len() * 8);
    for &x in m.as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServeError::Protocol(format!(
                "frame truncated while reading {what}"
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| ServeError::Protocol(format!("{what} is not valid UTF-8")))
    }

    fn matrix(&mut self, what: &str) -> Result<Matrix> {
        let rows = self.u64(what)? as usize;
        let cols = self.u64(what)? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n as u64 * 8 <= u64::from(MAX_FRAME_LEN))
            .ok_or_else(|| ServeError::Protocol(format!("{what} shape is absurd")))?;
        let bytes = self.take(n * 8, what)?;
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Protocol(format!("bad {what}: {e}")))
    }

    fn finish(self, what: &str) -> Result<()> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.data.len() - self.pos
            )))
        }
    }
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Transform { model, inputs } => {
                out.push(1);
                push_str(out, model);
                push_u32(out, inputs.len() as u32);
                for m in inputs {
                    push_matrix(out, m);
                }
            }
            Request::ListModels => out.push(2),
            Request::Ping => out.push(3),
            Request::Outputs { model, inputs } => {
                out.push(4);
                push_str(out, model);
                push_u32(out, inputs.len() as u32);
                for m in inputs {
                    push_matrix(out, m);
                }
            }
            Request::TransformView {
                model,
                view,
                input,
                precision,
            } => match precision {
                Precision::F64 => {
                    out.push(5);
                    push_str(out, model);
                    push_u32(out, *view);
                    push_matrix(out, input);
                }
                Precision::F32 => {
                    out.push(12);
                    push_str(out, model);
                    push_u32(out, *view);
                    out.push(1);
                    push_matrix(out, input);
                }
            },
            Request::Rescan => out.push(6),
            Request::Stats => out.push(7),
            Request::Refit => out.push(8),
            Request::AddShard { addr } => {
                out.push(9);
                push_str(out, addr);
            }
            Request::RemoveShard { shard } => {
                out.push(10);
                push_u64(out, *shard);
            }
            Request::ClusterInfo => out.push(11),
            Request::Tagged {
                id,
                deadline_ms,
                inner,
            } => {
                match deadline_ms {
                    None => {
                        out.push(TAGGED_OPCODE);
                        push_u64(out, *id);
                    }
                    Some(ms) => {
                        out.push(TAGGED_DEADLINE_OPCODE);
                        push_u64(out, *id);
                        push_u32(out, *ms);
                    }
                }
                inner.encode_into(out);
            }
        }
    }

    /// Wrap this request in a v2 [`Request::Tagged`] envelope.
    pub fn tagged(self, id: u64) -> Request {
        Request::Tagged {
            id,
            deadline_ms: None,
            inner: Box::new(self),
        }
    }

    /// Wrap this request in a v4 deadline-carrying [`Request::Tagged`] envelope:
    /// the server drops the work with [`Response::DeadlineExceeded`] if it is
    /// still queued `deadline_ms` milliseconds after receipt.
    pub fn tagged_deadline(self, id: u64, deadline_ms: u32) -> Request {
        Request::Tagged {
            id,
            deadline_ms: Some(deadline_ms),
            inner: Box::new(self),
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut c = Cursor {
            data: payload,
            pos: 0,
        };
        let req = Self::decode_cursor(&mut c, true)?;
        c.finish("request")?;
        Ok(req)
    }

    fn decode_cursor(c: &mut Cursor<'_>, allow_tag: bool) -> Result<Self> {
        let req = match c.u8("request opcode")? {
            1 => {
                let model = c.string("model name")?;
                let count = c.u32("input count")? as usize;
                let inputs = (0..count)
                    .map(|_| c.matrix("input matrix"))
                    .collect::<Result<Vec<_>>>()?;
                Request::Transform { model, inputs }
            }
            2 => Request::ListModels,
            3 => Request::Ping,
            4 => {
                let model = c.string("model name")?;
                let count = c.u32("input count")? as usize;
                let inputs = (0..count)
                    .map(|_| c.matrix("input matrix"))
                    .collect::<Result<Vec<_>>>()?;
                Request::Outputs { model, inputs }
            }
            5 => {
                let model = c.string("model name")?;
                let view = c.u32("view index")?;
                let input = c.matrix("view matrix")?;
                Request::TransformView {
                    model,
                    view,
                    input,
                    precision: Precision::F64,
                }
            }
            6 => Request::Rescan,
            7 => Request::Stats,
            8 => Request::Refit,
            9 => Request::AddShard {
                addr: c.string("shard address")?,
            },
            10 => Request::RemoveShard {
                shard: c.u64("shard id")?,
            },
            11 => Request::ClusterInfo,
            12 => {
                let model = c.string("model name")?;
                let view = c.u32("view index")?;
                let precision = match c.u8("transform precision")? {
                    0 => Precision::F64,
                    1 => Precision::F32,
                    p => {
                        return Err(ServeError::Protocol(format!(
                            "unknown transform precision {p}"
                        )))
                    }
                };
                let input = c.matrix("view matrix")?;
                Request::TransformView {
                    model,
                    view,
                    input,
                    precision,
                }
            }
            op @ (TAGGED_OPCODE | TAGGED_DEADLINE_OPCODE) if allow_tag => {
                let id = c.u64("request id")?;
                let deadline_ms = if op == TAGGED_DEADLINE_OPCODE {
                    Some(c.u32("request deadline")?)
                } else {
                    None
                };
                let inner = Box::new(Self::decode_cursor(c, false)?);
                Request::Tagged {
                    id,
                    deadline_ms,
                    inner,
                }
            }
            TAGGED_OPCODE | TAGGED_DEADLINE_OPCODE => {
                return Err(ServeError::Protocol(
                    "tagged request nested inside a tagged request".into(),
                ))
            }
            op => return Err(ServeError::Protocol(format!("unknown request opcode {op}"))),
        };
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Embedding(m) => {
                out.push(0);
                push_matrix(out, m);
            }
            Response::Error(msg) => {
                out.push(1);
                push_str(out, msg);
            }
            Response::Models(models) => {
                out.push(2);
                push_u32(out, models.len() as u32);
                for info in models {
                    push_str(out, &info.name);
                    push_str(out, &info.method);
                    push_u64(out, info.dim as u64);
                    push_u32(out, info.num_views as u32);
                    out.push(match info.input_kind {
                        InputKind::Views => 0,
                        InputKind::Kernels => 1,
                    });
                    push_u64(out, info.version);
                }
            }
            Response::Pong => out.push(3),
            Response::Outputs(candidates) => {
                out.push(4);
                push_u32(out, candidates.len() as u32);
                for c in candidates {
                    push_str(out, &c.label);
                    out.push(match c.kind {
                        CandidateKind::Embedding => 0,
                        CandidateKind::Distances => 1,
                    });
                    push_matrix(out, &c.matrix);
                }
            }
            Response::Rescanned(report) => {
                out.push(5);
                push_u32(out, report.added as u32);
                push_u32(out, report.removed as u32);
                push_u32(out, report.reloaded as u32);
                push_u32(out, report.corrupt_skipped as u32);
            }
            Response::Stats(counters) => {
                out.push(6);
                push_u32(out, counters.len() as u32);
                for (name, value) in counters {
                    push_str(out, name);
                    push_u64(out, *value);
                }
            }
            Response::Overloaded(msg) => {
                out.push(7);
                push_str(out, msg);
            }
            Response::DeadlineExceeded(msg) => {
                out.push(8);
                push_str(out, msg);
            }
            Response::Cluster(shards) => {
                out.push(9);
                push_u32(out, shards.len() as u32);
                for s in shards {
                    push_u64(out, s.id);
                    push_str(out, &s.label);
                    out.push(u8::from(s.alive) | (u8::from(s.draining) << 1));
                    push_u64(out, s.inflight);
                    push_u64(out, s.routed);
                }
            }
            Response::Tagged { id, inner } => {
                out.push(TAGGED_OPCODE);
                push_u64(out, *id);
                inner.encode_into(out);
            }
        }
    }

    /// Wrap this response in a v2 [`Response::Tagged`] envelope.
    pub fn tagged(self, id: u64) -> Response {
        Response::Tagged {
            id,
            inner: Box::new(self),
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut c = Cursor {
            data: payload,
            pos: 0,
        };
        let resp = Self::decode_cursor(&mut c, true)?;
        c.finish("response")?;
        Ok(resp)
    }

    fn decode_cursor(c: &mut Cursor<'_>, allow_tag: bool) -> Result<Self> {
        let resp = match c.u8("response opcode")? {
            0 => Response::Embedding(c.matrix("embedding")?),
            1 => Response::Error(c.string("error message")?),
            2 => {
                let count = c.u32("model count")? as usize;
                let mut models = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = c.string("model name")?;
                    let method = c.string("method name")?;
                    let dim = c.u64("dim")? as usize;
                    let num_views = c.u32("num_views")? as usize;
                    let input_kind = match c.u8("input kind")? {
                        0 => InputKind::Views,
                        1 => InputKind::Kernels,
                        k => {
                            return Err(ServeError::Protocol(format!(
                                "unknown input-kind byte {k}"
                            )))
                        }
                    };
                    let version = c.u64("model version")?;
                    models.push(ModelInfo {
                        name,
                        method,
                        dim,
                        num_views,
                        input_kind,
                        version,
                    });
                }
                Response::Models(models)
            }
            3 => Response::Pong,
            4 => {
                let count = c.u32("candidate count")? as usize;
                let mut candidates = Vec::with_capacity(count);
                for _ in 0..count {
                    let label = c.string("candidate label")?;
                    let kind = match c.u8("candidate kind")? {
                        0 => CandidateKind::Embedding,
                        1 => CandidateKind::Distances,
                        k => {
                            return Err(ServeError::Protocol(format!(
                                "unknown candidate-kind byte {k}"
                            )))
                        }
                    };
                    let matrix = c.matrix("candidate matrix")?;
                    candidates.push(NamedOutput {
                        label,
                        kind,
                        matrix,
                    });
                }
                Response::Outputs(candidates)
            }
            5 => Response::Rescanned(RescanReport {
                added: c.u32("rescan added")? as usize,
                removed: c.u32("rescan removed")? as usize,
                reloaded: c.u32("rescan reloaded")? as usize,
                corrupt_skipped: c.u32("rescan corrupt skipped")? as usize,
            }),
            6 => {
                let count = c.u32("counter count")? as usize;
                let mut counters = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = c.string("counter name")?;
                    let value = c.u64("counter value")?;
                    counters.push((name, value));
                }
                Response::Stats(counters)
            }
            7 => Response::Overloaded(c.string("overload reason")?),
            8 => Response::DeadlineExceeded(c.string("deadline reason")?),
            9 => {
                let count = c.u32("shard count")? as usize;
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = c.u64("shard id")?;
                    let label = c.string("shard label")?;
                    let flags = c.u8("shard flags")?;
                    if flags & !0b11 != 0 {
                        return Err(ServeError::Protocol(format!(
                            "unknown shard-flag bits {flags:#04x}"
                        )));
                    }
                    let inflight = c.u64("shard inflight")?;
                    let routed = c.u64("shard routed")?;
                    shards.push(ShardInfo {
                        id,
                        label,
                        alive: flags & 1 != 0,
                        draining: flags & 2 != 0,
                        inflight,
                        routed,
                    });
                }
                Response::Cluster(shards)
            }
            TAGGED_OPCODE if allow_tag => {
                let id = c.u64("response id")?;
                let inner = Box::new(Self::decode_cursor(c, false)?);
                Response::Tagged { id, inner }
            }
            TAGGED_OPCODE => {
                return Err(ServeError::Protocol(
                    "tagged response nested inside a tagged response".into(),
                ))
            }
            op => {
                return Err(ServeError::Protocol(format!(
                    "unknown response opcode {op}"
                )))
            }
        };
        Ok(resp)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. Returns `None` on a clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame(r: &mut dyn Read) -> Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Protocol(
                    "connection closed mid frame header".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Protocol("connection closed mid frame payload".into())
        } else {
            ServeError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[vec![1.5, -2.0, 0.0], vec![f64::MIN_POSITIVE, 7.0, -0.0]]).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Transform {
                model: "tcca-prod".into(),
                inputs: vec![sample_matrix(), Matrix::zeros(1, 3)],
            },
            Request::ListModels,
            Request::Ping,
            Request::Outputs {
                model: "bsf".into(),
                inputs: vec![sample_matrix()],
            },
            Request::TransformView {
                model: "cca-ls".into(),
                view: 2,
                input: sample_matrix(),
                precision: Precision::F64,
            },
            Request::TransformView {
                model: "cca-ls".into(),
                view: 2,
                input: sample_matrix(),
                precision: Precision::F32,
            },
            Request::Rescan,
            Request::Stats,
            Request::Refit,
            Request::AddShard {
                addr: "10.0.0.7:7878".into(),
            },
            Request::RemoveShard { shard: 3 },
            Request::ClusterInfo,
            Request::RemoveShard { shard: u64::MAX }.tagged(12),
            Request::Ping.tagged(u64::MAX),
            Request::Transform {
                model: "m".into(),
                inputs: vec![sample_matrix()],
            }
            .tagged(7),
            Request::Transform {
                model: "m".into(),
                inputs: vec![sample_matrix()],
            }
            .tagged_deadline(8, 250),
            Request::Ping.tagged_deadline(9, 0),
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn nested_tags_are_rejected() {
        let req = Request::Ping.tagged(1).tagged(2);
        assert!(Request::decode(&req.encode()).is_err());
        let req = Request::Ping.tagged_deadline(1, 5).tagged(2);
        assert!(Request::decode(&req.encode()).is_err());
        let resp = Response::Pong.tagged(1).tagged(2);
        assert!(Response::decode(&resp.encode()).is_err());
    }

    #[test]
    fn deadline_envelope_is_opcode_17_and_plain_tag_is_unchanged() {
        // v2 compatibility: a deadline-free tag must still encode as opcode 16
        // with the exact v2 layout.
        let plain = Request::Ping.tagged(3).encode();
        assert_eq!(plain[0], TAGGED_OPCODE);
        assert_eq!(plain.len(), 1 + 8 + 1);
        let with_deadline = Request::Ping.tagged_deadline(3, 1500).encode();
        assert_eq!(with_deadline[0], TAGGED_DEADLINE_OPCODE);
        assert_eq!(with_deadline.len(), 1 + 8 + 4 + 1);
        assert_eq!(&with_deadline[9..13], &1500u32.to_le_bytes());
    }

    #[test]
    fn f64_transform_view_keeps_the_v2_opcode_5_layout() {
        // v6 compatibility: the default precision must encode byte-for-byte as
        // the v2 request, so pre-v6 servers keep understanding default clients.
        let input = sample_matrix();
        let v6 = Request::TransformView {
            model: "m".into(),
            view: 1,
            input: input.clone(),
            precision: Precision::F64,
        }
        .encode();
        assert_eq!(v6[0], 5);
        let mut v2 = vec![5u8];
        push_str(&mut v2, "m");
        push_u32(&mut v2, 1);
        push_matrix(&mut v2, &input);
        assert_eq!(v6, v2);

        let f32_bytes = Request::TransformView {
            model: "m".into(),
            view: 1,
            input,
            precision: Precision::F32,
        }
        .encode();
        assert_eq!(f32_bytes[0], 12);
        // name (4 + 1) then view index (4), then the precision byte.
        assert_eq!(f32_bytes[1 + 5 + 4], 1);
    }

    #[test]
    fn unknown_precision_byte_is_a_protocol_error() {
        let mut payload = vec![12u8];
        push_str(&mut payload, "m");
        push_u32(&mut payload, 0);
        payload.push(9); // not a precision
        push_matrix(&mut payload, &sample_matrix());
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("unknown transform precision"));
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Embedding(sample_matrix()),
            Response::Error("boom".into()),
            Response::Models(vec![ModelInfo {
                name: "m".into(),
                method: "KTCCA".into(),
                dim: 6,
                num_views: 3,
                input_kind: InputKind::Kernels,
                version: 41,
            }]),
            Response::Pong,
            Response::Outputs(vec![
                NamedOutput {
                    label: "view0".into(),
                    kind: CandidateKind::Embedding,
                    matrix: sample_matrix(),
                },
                NamedOutput {
                    label: "kernel1".into(),
                    kind: CandidateKind::Distances,
                    matrix: Matrix::zeros(2, 2),
                },
            ]),
            Response::Rescanned(RescanReport {
                added: 2,
                removed: 1,
                reloaded: 3,
                corrupt_skipped: 4,
            }),
            Response::Overloaded("queue full (64 pending)".into()),
            Response::DeadlineExceeded("expired 12ms before dispatch".into()),
            Response::Stats(vec![
                ("requests".into(), 12),
                ("trainer/model_version".into(), u64::MAX),
            ]),
            Response::Stats(Vec::new()),
            Response::Cluster(vec![
                ShardInfo {
                    id: 0,
                    label: "local-0".into(),
                    alive: true,
                    draining: false,
                    inflight: 2,
                    routed: 917,
                },
                ShardInfo {
                    id: 5,
                    label: "127.0.0.1:40123".into(),
                    alive: false,
                    draining: true,
                    inflight: 0,
                    routed: u64::MAX,
                },
            ]),
            Response::Cluster(Vec::new()),
            Response::Embedding(sample_matrix()).tagged(99),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_control_ops_are_rejected() {
        // AddShard whose declared address length exceeds the payload.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&100u32.to_le_bytes());
        payload.extend_from_slice(b"short");
        assert!(Request::decode(&payload).is_err());
        // RemoveShard with a truncated id.
        assert!(Request::decode(&[10u8, 1, 2, 3]).is_err());
        // Cluster reply with undefined flag bits.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(0b100);
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Length field says 8 bytes but only 3 follow.
        let mut buf = 8u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut buf.as_slice()).is_err());

        // Oversized length is refused before allocating.
        let buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut buf.as_slice()).is_err());

        // Unknown opcode and trailing junk.
        assert!(Request::decode(&[99]).is_err());
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
    }
}
