//! `serve` — model persistence store and batched transform serving.
//!
//! The fitting side of this workspace is offline; the *serving* side — projecting new
//! instances through an already-fitted model — is the hot path of any deployment.
//! This crate turns the registry's uniform `Box<dyn MultiViewModel>` surface into a
//! small serving stack:
//!
//! * [`ModelStore`] — maps model names to lazily-loaded models backed by `.mvm` files
//!   (the `MVTC` format of `mvcore::persist`), with header-only metadata for cheap
//!   directory indexing, mtime-based [`ModelStore::rescan`] (new files become
//!   servable without a restart) and LRU payload eviction under a byte budget.
//! * [`BatchEngine`] — a micro-batching transform engine: concurrent requests for the
//!   same model are coalesced (up to `max_batch` instances / `max_wait`) into one
//!   batched `transform` executed on a [`parallel::Pool`], so many clients share
//!   bounded thread pools instead of oversubscribing the machine. Submission is
//!   callback-based ([`BatchEngine::submit_transform`]) so the event-loop server
//!   never blocks; batched `transform_view` requests stitch a single view.
//! * [`Router`] — a sharded serving tier: N in-process or child-process shards,
//!   rendezvous-hash placement by model name with a replicated hot set, and
//!   mid-request failover when a shard dies.
//! * [`Server`] / [`Client`] — an event-loop TCP server multiplexing all sockets
//!   on a pluggable readiness [`reactor`] (epoll(7) on Linux, poll(2) as the
//!   portable fallback, selected at runtime), speaking the length-prefixed frame
//!   protocol (see [`wire`]; v2 adds tagged request ids for pipelined,
//!   out-of-order replies, v4 adds wire deadlines and in-band overload verdicts,
//!   v5 adds live control-plane ops for runtime shard add/remove) plus the
//!   `tcca_serve` binary, which also offers one-shot CLI modes for offline
//!   embedding and routing.
//!
//! The stack protects itself under overload rather than degrading silently:
//! bounded admission queues shed excess work with in-band
//! [`ServeError::Overloaded`] verdicts (never a dropped connection), request
//! deadlines propagate down to the engine and across shard hops so dead work is
//! discarded instead of computed, the router's failover pays from per-shard
//! retry budgets with jittered exponential backoff, and a deterministic fault
//! layer ([`faults`]) plus the `tcca_serve soak` chaos harness prove the whole
//! thing under seeded, replayable failure schedules.
//!
//! ```no_run
//! use mvcore::EstimatorRegistry;
//! use serve::{BatchConfig, ModelStore, Server};
//! use std::sync::Arc;
//!
//! let store = Arc::new(ModelStore::open(
//!     EstimatorRegistry::with_builtin(),
//!     "models/",
//! ).unwrap());
//! let server = Server::bind("127.0.0.1:7878", store, BatchConfig::default()).unwrap();
//! server.run().unwrap(); // event loop
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod client;
mod error;
pub mod faults;
pub mod reactor;
mod router;
mod server;
mod service;
pub mod soak;
mod store;
mod trainer;
pub mod wire;

pub use batch::{BatchConfig, BatchEngine, EngineStats, OutputsCallback, ReplyCallback};
pub use client::Client;
pub use error::{ErrorClass, ServeError};
pub use faults::{FaultPlan, Site};
pub use reactor::ReactorKind;
pub use router::{Router, RouterBuilder, RouterConfig, RouterStats, Shard};
pub use server::{Server, ServerTuning, ShutdownHandle};
pub use service::TransformService;
pub use store::{ModelShadowF32, ModelStore, StoredModel, ViewShadowF32, MODEL_EXTENSION};
pub use trainer::{TrainerConfig, TrainerService};
pub use wire::Precision;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
