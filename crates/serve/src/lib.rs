//! `serve` — model persistence store and batched transform serving.
//!
//! The fitting side of this workspace is offline; the *serving* side — projecting new
//! instances through an already-fitted model — is the hot path of any deployment.
//! This crate turns the registry's uniform `Box<dyn MultiViewModel>` surface into a
//! small serving stack:
//!
//! * [`ModelStore`] — maps model names to lazily-loaded models backed by `.mvm` files
//!   (the `MVTC` format of `mvcore::persist`), with header-only metadata for cheap
//!   directory indexing and checksum reporting.
//! * [`BatchEngine`] — a micro-batching transform engine: concurrent requests for the
//!   same model are coalesced (up to `max_batch` instances / `max_wait`) into one
//!   batched `transform` executed on the process-wide [`parallel::Pool`], so many
//!   clients share one thread pool instead of oversubscribing the machine.
//! * [`Server`] / [`Client`] — a length-prefixed binary frame protocol over
//!   `std::net` TCP (see [`wire`]) plus the `tcca_serve` binary, which also offers a
//!   one-shot CLI mode for offline embedding.
//!
//! ```no_run
//! use mvcore::EstimatorRegistry;
//! use serve::{BatchConfig, ModelStore, Server};
//! use std::sync::Arc;
//!
//! let store = Arc::new(ModelStore::open(
//!     EstimatorRegistry::with_builtin(),
//!     "models/",
//! ).unwrap());
//! let server = Server::bind("127.0.0.1:7878", store, BatchConfig::default()).unwrap();
//! server.run().unwrap(); // accept loop
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod client;
mod error;
mod server;
mod store;
pub mod wire;

pub use batch::{BatchConfig, BatchEngine, EngineStats};
pub use client::Client;
pub use error::ServeError;
pub use server::Server;
pub use store::{ModelStore, StoredModel, MODEL_EXTENSION};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
