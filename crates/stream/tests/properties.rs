//! Property tests for the streaming-fit contracts.
//!
//! * **Chunking invariance** — for every streamable linear method, accumulating in
//!   one chunk, in `k` chunks, or merging per-chunk stats in a shuffled order must
//!   finalize into a model whose persisted state and `transform` output are
//!   **bit-identical** to the one-shot fit on the concatenated samples.
//! * **Warm-start convergence** — a TCCA refit seeded from a previous (or
//!   perturbed) model's factors must reach the one-shot objective within tolerance,
//!   the regime streaming tensor factorization analyses assume (Chen, Kolar & Tsay,
//!   arXiv:1906.05358).

use datasets::GaussianRng;
use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, MultiViewModel, SufficientStats};
use proptest::prelude::*;
use stream::StreamingRegistry;

const DIMS: [usize; 3] = [4, 3, 2];

/// Noisy views sharing a skewed latent signal (same family as the tcca fixtures).
fn planted_views(n: usize, seed: u64, noise: f64) -> Vec<Matrix> {
    let mut rng = GaussianRng::new(seed);
    let mut views: Vec<Matrix> = DIMS.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        let t = if rng.bernoulli(0.3) { 1.4 } else { -0.6 } + 0.05 * rng.standard_normal();
        for v in views.iter_mut() {
            for i in 0..v.rows() {
                v[(i, j)] = t * (0.5 + i as f64) + noise * rng.standard_normal();
            }
        }
    }
    views
}

fn column_chunk(views: &[Matrix], cols: &[usize]) -> Vec<Matrix> {
    views.iter().map(|v| v.select_columns(cols)).collect()
}

/// Split `n` instances into `k` contiguous chunks at pseudo-random boundaries.
fn chunk_bounds(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut cuts: Vec<usize> = (1..k)
        .map(|i| {
            1 + (seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 40503) % (n as u64 - 1))
                as usize
        })
        .collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Embedding used for bit-identity checks; BSF has no joint embedding, so its
/// first per-view output stands in.
fn embedding(model: &dyn MultiViewModel, views: &[Matrix]) -> Matrix {
    if model.name() == "BSF" {
        model.transform_view(0, &views[0]).unwrap()
    } else {
        model.transform(views).unwrap()
    }
}

const STREAMABLE: [&str; 6] = ["BSF", "CAT", "PCA", "CCA (BST)", "CCA (AVG)", "CCA-MAXVAR"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chunked_streaming_is_bit_identical_to_one_shot(
        seed in 0u64..300,
        n in 24usize..60,
        k in 2usize..6,
    ) {
        let views = planted_views(n, seed, 0.4);
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(seed);
        let one_shot_registry = EstimatorRegistry::with_builtin();
        let streaming = StreamingRegistry::with_builtin();

        for method in STREAMABLE {
            let reference = one_shot_registry.fit(method, &views, &spec).unwrap();
            let reference_state = reference.save_state().unwrap();
            let reference_z = embedding(reference.as_ref(), &views);

            // One chunk.
            let mut whole = streaming.new_stats(method, &DIMS, &spec).unwrap();
            whole.partial_fit(&views).unwrap();
            let whole_model = whole.finalize().unwrap();
            prop_assert!(
                whole_model.save_state().unwrap() == reference_state,
                "{}: single-chunk state differs from one-shot",
                method
            );

            // k chunks, merged in rotated (shuffled) order.
            let bounds = chunk_bounds(n, k, seed);
            let mut parts: Vec<Box<dyn SufficientStats>> = bounds
                .iter()
                .map(|&(a, b)| {
                    let mut s = streaming.new_stats(method, &DIMS, &spec).unwrap();
                    let cols: Vec<usize> = (a..b).collect();
                    s.partial_fit(&column_chunk(&views, &cols)).unwrap();
                    s
                })
                .collect();
            let rot = (seed as usize) % parts.len();
            parts.rotate_left(rot);
            let mut merged = parts.remove(0);
            for part in &parts {
                merged.merge(part.as_ref()).unwrap();
            }
            prop_assert_eq!(merged.count(), n as u64);
            let merged_model = merged.finalize().unwrap();
            prop_assert!(
                merged_model.save_state().unwrap() == reference_state,
                "{}: merged-chunk state differs from one-shot",
                method
            );
            // Transform must agree bit for bit, not just within tolerance.
            let merged_z = embedding(merged_model.as_ref(), &views);
            prop_assert!(
                merged_z.shape() == reference_z.shape()
                    && merged_z.as_slice() == reference_z.as_slice(),
                "{}: merged-chunk transform differs from one-shot",
                method
            );
        }
    }

    #[test]
    fn warm_started_tcca_reaches_the_batch_objective(seed in 0u64..100) {
        // A rank-1 decomposition of a two-signal fixture: rank 1 keeps CP-ALS out
        // of the degenerate "swamp" regime (whitening equalizes component weights,
        // so higher ranks can stall on randomly drawn instances — the rank-2 case
        // is exercised deterministically in tests/warm_start.rs).
        let mut rng = GaussianRng::new(seed);
        let n = 200;
        let warm_dims = [4usize, 3, 3];
        let mut views: Vec<Matrix> = warm_dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let s = rng.standard_normal();
            let t = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = s * (0.5 + i as f64) + t * ((i as f64 * 1.3).cos())
                        + 0.15 * rng.standard_normal();
                }
            }
        }
        // Tight ALS tolerance and a generous sweep budget so cold and warm runs
        // both actually converge (and thus settle on the same optimum).
        let spec = FitSpec::with_rank(1)
            .epsilon(1e-2)
            .seed(seed)
            .tolerance(1e-10)
            .decomposition_iterations(600);
        let streaming = StreamingRegistry::with_builtin();
        let mut stats = streaming.new_stats("TCCA", &warm_dims, &spec).unwrap();
        stats.partial_fit(&views).unwrap();

        let (cold, cold_sweeps) = streaming.refit("TCCA", None, stats.as_ref()).unwrap();
        let (warm, warm_sweeps) = streaming
            .refit("TCCA", Some(cold.as_ref()), stats.as_ref())
            .unwrap();
        prop_assert!(
            warm_sweeps <= cold_sweeps,
            "warm refit took {} sweeps, cold took {}",
            warm_sweeps,
            cold_sweeps
        );

        // Same stats + warm start → the same optimum within tolerance.
        let zc = cold.transform(&views).unwrap();
        let zw = warm.transform(&views).unwrap();
        prop_assert!(zc.shape() == zw.shape());
        for (a, b) in zc.as_slice().iter().zip(zw.as_slice()) {
            // The stopping rule bounds the fit change, so parameters only agree to
            // about the square root of the ALS tolerance.
            prop_assert!((a - b).abs() < 1e-3, "embeddings diverge: {} vs {}", a, b);
        }
    }
}
