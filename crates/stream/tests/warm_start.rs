//! Deterministic warm-start convergence test backing the acceptance criterion:
//! a TCCA refit seeded from a previous model's factors must reach the batch
//! objective within tolerance in **at most half the sweeps** of a cold fit.

use datasets::GaussianRng;
use linalg::Matrix;
use mvcore::FitSpec;
use stream::StreamingRegistry;

const DIMS: [usize; 3] = [4, 3, 3];

fn noisy_views(n: usize, seed: u64) -> Vec<Matrix> {
    let mut rng = GaussianRng::new(seed);
    let mut views: Vec<Matrix> = DIMS.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        // Two overlapping latent signals plus noise: the whitened tensor is not
        // close to exactly rank-2, so cold ALS needs several sweeps to settle.
        let s = rng.standard_normal();
        let t = rng.standard_normal();
        for v in views.iter_mut() {
            for i in 0..v.rows() {
                v[(i, j)] = s * (0.5 + i as f64)
                    + t * ((i as f64 * 1.3).cos())
                    + 0.6 * rng.standard_normal();
            }
        }
    }
    views
}

fn spec() -> FitSpec {
    // A tight tolerance makes the sweep counts meaningful: cold ALS has to grind
    // down to it from the HOSVD initialization, the warm start begins there.
    FitSpec::with_rank(2)
        .epsilon(1e-2)
        .seed(17)
        .tolerance(1e-10)
}

#[test]
fn warm_refit_halves_the_sweeps_of_a_cold_fit() {
    let views = noisy_views(120, 41);
    let streaming = StreamingRegistry::with_builtin();
    let mut stats = streaming.new_stats("TCCA", &DIMS, &spec()).unwrap();
    stats.partial_fit(&views).unwrap();

    let (cold, cold_sweeps) = streaming.refit("TCCA", None, stats.as_ref()).unwrap();
    let (warm, warm_sweeps) = streaming
        .refit("TCCA", Some(cold.as_ref()), stats.as_ref())
        .unwrap();

    assert!(
        cold_sweeps >= 2,
        "cold fit converged in {cold_sweeps} sweeps; fixture too easy"
    );
    assert!(
        warm_sweeps * 2 <= cold_sweeps,
        "warm refit took {warm_sweeps} sweeps, cold took {cold_sweeps}"
    );

    // Same optimum: embeddings agree within tolerance.
    let zc = cold.transform(&views).unwrap();
    let zw = warm.transform(&views).unwrap();
    let max_diff = zc
        .as_slice()
        .iter()
        .zip(zw.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    // The ALS stopping rule bounds the *fit* change, so parameters (and hence
    // embeddings) agree to roughly the square root of that — not bit-for-bit.
    assert!(max_diff < 1e-4, "embeddings diverge by {max_diff}");
}

#[test]
fn refit_from_perturbed_factors_recovers_the_batch_objective() {
    let views = noisy_views(120, 42);
    let streaming = StreamingRegistry::with_builtin();
    let fit_spec = spec();
    let mut stats = streaming.new_stats("TCCA", &DIMS, &fit_spec).unwrap();
    stats.partial_fit(&views).unwrap();
    let (cold, cold_sweeps) = streaming.refit("TCCA", None, stats.as_ref()).unwrap();

    // Simulate a model that drifted: perturb the converged factors slightly and
    // hand the result back as the warm-start seed.
    let inner = tcca::Tcca::fit(&views, &fit_spec.tcca_options()).unwrap();
    let perturbed: Vec<Matrix> = inner
        .factors()
        .iter()
        .map(|f| {
            let mut p = f.clone();
            for i in 0..p.rows() {
                for j in 0..p.cols() {
                    p[(i, j)] += 1e-3 * ((i * 7 + j * 3) as f64).sin();
                }
            }
            p
        })
        .collect();
    let n = views[0].cols();
    let prev_inner = inner.with_factors(perturbed).unwrap();
    let prev = mvcore::estimators::tcca_model_from_parts(prev_inner, &DIMS, n);

    let (warm, warm_sweeps) = streaming
        .refit("TCCA", Some(prev.as_ref()), stats.as_ref())
        .unwrap();
    assert!(
        warm_sweeps * 2 <= cold_sweeps,
        "warm refit took {warm_sweeps} sweeps, cold took {cold_sweeps}"
    );

    let zc = cold.transform(&views).unwrap();
    let zw = warm.transform(&views).unwrap();
    let max_diff = zc
        .as_slice()
        .iter()
        .zip(zw.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_diff < 1e-4, "embeddings diverge by {max_diff}");
}
