//! `stream` — streaming fits: mergeable sufficient statistics and warm-started
//! refits for the paper's estimator family.
//!
//! The one-shot API fits on all samples at once (`registry.fit(name, &views, …)`).
//! This crate splits that into **accumulate → merge → finalize** over chunks of
//! instances (see [`mvcore::SufficientStats`]), which is what a serving tier needs
//! to refresh models from live traffic without ever holding the full sample set:
//!
//! ```
//! use linalg::Matrix;
//! use mvcore::FitSpec;
//! use stream::StreamingRegistry;
//!
//! let registry = StreamingRegistry::with_builtin();
//! let spec = FitSpec::with_rank(1).epsilon(1e-2);
//! let dims = [3usize, 2];
//! let mut stats = registry.new_stats("CCA-MAXVAR", &dims, &spec).unwrap();
//!
//! // Feed chunks as they arrive (here: 30 instances in chunks of 10)…
//! for chunk in 0..3 {
//!     let views: Vec<Matrix> = dims
//!         .iter()
//!         .map(|&d| {
//!             let mut v = Matrix::zeros(d, 10);
//!             for j in 0..10 {
//!                 let t = (chunk * 10 + j) as f64 * 0.37;
//!                 for i in 0..d {
//!                     v[(i, j)] = (t + i as f64).sin();
//!                 }
//!             }
//!             v
//!         })
//!         .collect();
//!     stats.partial_fit(&views).unwrap();
//! }
//! assert_eq!(stats.count(), 30);
//!
//! // …then solve the method from the summary alone.
//! let model = stats.finalize().unwrap();
//! assert_eq!(model.num_views(), 2);
//! ```
//!
//! ## Supported methods and their contracts
//!
//! | Method | Stats | Contract vs one-shot fit |
//! |---|---|---|
//! | BSF, CAT | dims + count | trivially identical |
//! | PCA, CCA (BST), CCA (AVG), CCA-MAXVAR | exact joint moments | **bit-identical** under any chunking / merge order |
//! | TCCA | joint moments + raw moment tensor | tolerance; warm-startable via [`StreamingRegistry::refit`] |
//!
//! Not streamable: CCA-LS (its alternating solver updates a per-instance latent
//! vector, which is not a fixed-size function of the samples), DSE / SSMVD
//! (consensus over per-view spectral embeddings of the full sample set) and the
//! kernel methods (the Gram matrix grows with `N`).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod stats;

pub use stats::{FeatureStats, MomentMethod, MomentStats, TccaStats};

use linalg::Matrix;
use mvcore::{CoreError, FitSpec, MultiViewModel, StreamingEstimator, SufficientStats};

/// Convenience alias for results produced by this crate (same error type as
/// `mvcore` so streaming and one-shot code paths compose).
pub type Result<T> = mvcore::Result<T>;

macro_rules! simple_streaming {
    ($(#[$doc:meta])* $name:ident, $display:expr, $make:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl StreamingEstimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn new_stats(
                &self,
                dims: &[usize],
                spec: &FitSpec,
            ) -> Result<Box<dyn SufficientStats>> {
                #[allow(clippy::redundant_closure_call)]
                ($make)(dims, spec)
            }

            fn refit(
                &self,
                _prev: Option<&dyn MultiViewModel>,
                stats: &dyn SufficientStats,
            ) -> Result<(Box<dyn MultiViewModel>, usize)> {
                if stats.method() != self.name() {
                    return Err(CoreError::InvalidInput(format!(
                        "{} estimator got {} stats",
                        self.name(),
                        stats.method()
                    )));
                }
                Ok((stats.finalize()?, 0))
            }
        }
    };
}

simple_streaming!(
    /// Streaming BSF (no learned parameters; stats are dims + count).
    StreamingBsf,
    "BSF",
    |dims: &[usize], _spec: &FitSpec| Ok(Box::new(FeatureStats::bsf(dims)) as Box<dyn SufficientStats>)
);

simple_streaming!(
    /// Streaming CAT (no learned parameters; stats are dims + count).
    StreamingCat,
    "CAT",
    |dims: &[usize], _spec: &FitSpec| Ok(Box::new(FeatureStats::cat(dims)) as Box<dyn SufficientStats>)
);

simple_streaming!(
    /// Streaming per-view PCA (bit-identical to the one-shot fit).
    StreamingPca,
    "PCA",
    |dims: &[usize], spec: &FitSpec| Ok(Box::new(MomentStats::new(
        MomentMethod::Pca,
        dims,
        spec.rank,
        spec.epsilon
    )) as Box<dyn SufficientStats>)
);

simple_streaming!(
    /// Streaming pairwise CCA, best pair ("CCA (BST)"; bit-identical).
    StreamingCcaBest,
    "CCA (BST)",
    |dims: &[usize], spec: &FitSpec| Ok(Box::new(MomentStats::new(
        MomentMethod::CcaBest,
        dims,
        spec.rank,
        spec.epsilon
    )) as Box<dyn SufficientStats>)
);

simple_streaming!(
    /// Streaming pairwise CCA, averaged pairs ("CCA (AVG)"; bit-identical).
    StreamingCcaAverage,
    "CCA (AVG)",
    |dims: &[usize], spec: &FitSpec| Ok(Box::new(MomentStats::new(
        MomentMethod::CcaAverage,
        dims,
        spec.rank,
        spec.epsilon
    )) as Box<dyn SufficientStats>)
);

simple_streaming!(
    /// Streaming CCA-MAXVAR via the Gram eigenproblem (bit-identical).
    StreamingMaxVar,
    "CCA-MAXVAR",
    |dims: &[usize], spec: &FitSpec| Ok(Box::new(MomentStats::new(
        MomentMethod::MaxVar,
        dims,
        spec.rank,
        spec.epsilon
    )) as Box<dyn SufficientStats>)
);

/// Streaming TCCA: moment-tensor stats plus warm-started CP-ALS refits.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingTcca;

impl StreamingEstimator for StreamingTcca {
    fn name(&self) -> &str {
        "TCCA"
    }

    fn new_stats(&self, dims: &[usize], spec: &FitSpec) -> Result<Box<dyn SufficientStats>> {
        Ok(Box::new(TccaStats::new(dims, spec.tcca_options())))
    }

    fn refit(
        &self,
        prev: Option<&dyn MultiViewModel>,
        stats: &dyn SufficientStats,
    ) -> Result<(Box<dyn MultiViewModel>, usize)> {
        let stats = stats
            .as_any()
            .downcast_ref::<TccaStats>()
            .ok_or_else(|| CoreError::InvalidInput("TCCA estimator needs TCCA stats".into()))?;
        // Previous factors come through the persistence surface, so a model loaded
        // from disk warm-starts exactly like one still in memory. Files written
        // before factors were recorded simply fall back to a cold start.
        let warm_matrices;
        let warm: Option<&[Matrix]> = match prev {
            Some(model) if model.name() == "TCCA" => {
                let state = model.save_state()?;
                if state.contains("factors/len") {
                    warm_matrices = state.matrices("factors")?;
                    Some(&warm_matrices)
                } else {
                    None
                }
            }
            _ => None,
        };
        let (inner, sweeps) = stats.refit_inner(warm)?;
        let model =
            mvcore::estimators::tcca_model_from_parts(inner, stats.dims(), stats.count() as usize);
        Ok((model, sweeps))
    }
}

/// Name → [`StreamingEstimator`] dispatch, mirroring
/// [`mvcore::EstimatorRegistry`] for the streamable subset of methods.
pub struct StreamingRegistry {
    entries: Vec<Box<dyn StreamingEstimator + Send + Sync>>,
}

impl StreamingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Every built-in streaming estimator (see the crate docs for the table).
    pub fn with_builtin() -> Self {
        let mut r = Self::new();
        r.register(Box::new(StreamingBsf));
        r.register(Box::new(StreamingCat));
        r.register(Box::new(StreamingPca));
        r.register(Box::new(StreamingCcaBest));
        r.register(Box::new(StreamingCcaAverage));
        r.register(Box::new(StreamingMaxVar));
        r.register(Box::new(StreamingTcca));
        r
    }

    /// Register an estimator (replacing any previous entry with the same name).
    pub fn register(&mut self, estimator: Box<dyn StreamingEstimator + Send + Sync>) {
        self.entries.retain(|e| e.name() != estimator.name());
        self.entries.push(estimator);
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Whether a method supports streaming fits.
    pub fn supports(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name() == name)
    }

    /// Look up an estimator by registry name.
    pub fn get(&self, name: &str) -> Result<&(dyn StreamingEstimator + Send + Sync)> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
            .ok_or_else(|| CoreError::UnknownEstimator {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// Fresh stats for a method over views of the given dimensions.
    pub fn new_stats(
        &self,
        name: &str,
        dims: &[usize],
        spec: &FitSpec,
    ) -> Result<Box<dyn SufficientStats>> {
        self.get(name)?.new_stats(dims, spec)
    }

    /// Refit a method from accumulated stats, warm-starting from `prev` where the
    /// method supports it. Returns the model and the iterative sweep count.
    pub fn refit(
        &self,
        name: &str,
        prev: Option<&dyn MultiViewModel>,
        stats: &dyn SufficientStats,
    ) -> Result<(Box<dyn MultiViewModel>, usize)> {
        self.get(name)?.refit(prev, stats)
    }
}

impl Default for StreamingRegistry {
    fn default() -> Self {
        Self::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_the_streamable_subset() {
        let r = StreamingRegistry::with_builtin();
        for name in [
            "BSF",
            "CAT",
            "PCA",
            "CCA (BST)",
            "CCA (AVG)",
            "CCA-MAXVAR",
            "TCCA",
        ] {
            assert!(r.supports(name), "{name} should stream");
        }
        for name in ["CCA-LS", "DSE", "SSMVD", "KTCCA", "KCCA (BST)"] {
            assert!(!r.supports(name), "{name} must not claim streaming support");
        }
        let err = r.get("CCA-LS").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("TCCA"), "{err}");
    }

    #[test]
    fn new_stats_dispatches_by_name() {
        let r = StreamingRegistry::with_builtin();
        let spec = FitSpec::with_rank(2);
        let stats = r.new_stats("TCCA", &[3, 2], &spec).unwrap();
        assert_eq!(stats.method(), "TCCA");
        assert_eq!(stats.count(), 0);
        let stats = r.new_stats("PCA", &[3, 2], &spec).unwrap();
        assert_eq!(stats.method(), "PCA");
    }
}
