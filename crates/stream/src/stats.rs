//! Per-family [`SufficientStats`] implementations.
//!
//! Three stats shapes cover every supported method:
//!
//! * [`FeatureStats`] — BSF / CAT carry no learned parameters; the stats are just
//!   the view dimensions and the instance count.
//! * [`MomentStats`] — PCA, CCA (BST) / (AVG) and CCA-MAXVAR are closed forms of
//!   first and second moments; a [`JointMoments`] accumulator (exact Kulisch sums)
//!   makes accumulate → merge → finalize **bit-identical** to the one-shot fit
//!   under any chunking, because the per-method `fit` routes through the very same
//!   `fit_from_moments` constructors.
//! * [`TccaStats`] — TCCA additionally needs the order-`m` covariance tensor. The
//!   centered tensor depends on the final means, so the stats accumulate the *raw*
//!   moment tensor of mean-augmented samples `(x_p, 1)` and finalize recovers the
//!   centered tensor by inclusion–exclusion. The tensor sums are plain `f64`
//!   (merge-order-sensitive in the last bits), which is why TCCA's streaming
//!   contract is a convergence tolerance rather than bit-identity.

use crate::Result;
use baselines::{view_pairs, Cca, CcaMaxVar, Pca};
use linalg::{JointMoments, Matrix};
use mvcore::estimators::{
    bsf_model_from_parts, cat_model_from_parts, cca_maxvar_model_from_parts,
    pairwise_cca_model_from_parts, pca_model_from_parts, tcca_model_from_parts,
};
use mvcore::{CoreError, MultiViewModel, SufficientStats};
use std::any::Any;
use tcca::{Tcca, TccaOptions};
use tensor::DenseTensor;

/// Validate one chunk against the stats' per-view dimensions; returns the chunk's
/// instance count.
fn check_chunk(dims: &[usize], views: &[Matrix]) -> Result<usize> {
    if views.len() != dims.len() {
        return Err(CoreError::InvalidInput(format!(
            "expected {} views, got {}",
            dims.len(),
            views.len()
        )));
    }
    let n = views.first().map_or(0, Matrix::cols);
    for (p, (v, &d)) in views.iter().zip(dims.iter()).enumerate() {
        if v.rows() != d {
            return Err(CoreError::InvalidInput(format!(
                "view {p} has {} features but the stats expect {d}",
                v.rows()
            )));
        }
        if v.cols() != n {
            return Err(CoreError::InvalidInput(format!(
                "view {p} has {} instances, expected {n}",
                v.cols()
            )));
        }
    }
    Ok(n)
}

fn merge_mismatch(expected: &str) -> CoreError {
    CoreError::InvalidInput(format!(
        "cannot merge: other stats are not {expected} stats over the same shape \
         and hyperparameters"
    ))
}

// ---------------------------------------------------------------------------
// BSF / CAT
// ---------------------------------------------------------------------------

/// Stats for the parameter-free feature methods (BSF, CAT): dimensions + count.
pub struct FeatureStats {
    method: &'static str,
    dims: Vec<usize>,
    n: u64,
}

impl FeatureStats {
    /// Fresh BSF stats.
    pub fn bsf(dims: &[usize]) -> Self {
        Self {
            method: "BSF",
            dims: dims.to_vec(),
            n: 0,
        }
    }

    /// Fresh CAT stats.
    pub fn cat(dims: &[usize]) -> Self {
        Self {
            method: "CAT",
            dims: dims.to_vec(),
            n: 0,
        }
    }
}

impl SufficientStats for FeatureStats {
    fn method(&self) -> &str {
        self.method
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn partial_fit(&mut self, views: &[Matrix]) -> Result<()> {
        let n = check_chunk(&self.dims, views)?;
        self.n += n as u64;
        Ok(())
    }

    fn merge(&mut self, other: &dyn SufficientStats) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<FeatureStats>()
            .filter(|o| o.method == self.method && o.dims == self.dims)
            .ok_or_else(|| merge_mismatch(self.method))?;
        self.n += other.n;
        Ok(())
    }

    fn finalize(&self) -> Result<Box<dyn MultiViewModel>> {
        let n = self.n as usize;
        Ok(match self.method {
            "BSF" => bsf_model_from_parts(self.dims.clone(), n),
            _ => cat_model_from_parts(self.dims.clone(), n),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// PCA / CCA (BST) / CCA (AVG) / CCA-MAXVAR
// ---------------------------------------------------------------------------

/// Which closed-form moment method a [`MomentStats`] finalizes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomentMethod {
    /// Per-view PCA, concatenated.
    Pca,
    /// Pairwise CCA, best pair on validation ("CCA (BST)").
    CcaBest,
    /// Pairwise CCA, averaged pairs ("CCA (AVG)").
    CcaAverage,
    /// Multiset CCA via the Gram eigenproblem ("CCA-MAXVAR").
    MaxVar,
}

impl MomentMethod {
    fn name(self) -> &'static str {
        match self {
            MomentMethod::Pca => "PCA",
            MomentMethod::CcaBest => "CCA (BST)",
            MomentMethod::CcaAverage => "CCA (AVG)",
            MomentMethod::MaxVar => "CCA-MAXVAR",
        }
    }
}

/// Stats for the closed-form linear methods: exact joint first/second moments.
pub struct MomentStats {
    method: MomentMethod,
    rank: usize,
    epsilon: f64,
    moments: JointMoments,
}

impl MomentStats {
    /// Fresh stats for the given method over views of the given dimensions.
    pub fn new(method: MomentMethod, dims: &[usize], rank: usize, epsilon: f64) -> Self {
        Self {
            method,
            rank,
            epsilon,
            moments: JointMoments::new(dims),
        }
    }

    /// The accumulated joint moments.
    pub fn moments(&self) -> &JointMoments {
        &self.moments
    }
}

impl SufficientStats for MomentStats {
    fn method(&self) -> &str {
        self.method.name()
    }

    fn count(&self) -> u64 {
        self.moments.count()
    }

    fn partial_fit(&mut self, views: &[Matrix]) -> Result<()> {
        check_chunk(self.moments.dims(), views)?;
        self.moments.update(views)?;
        Ok(())
    }

    fn merge(&mut self, other: &dyn SufficientStats) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<MomentStats>()
            .filter(|o| {
                o.method == self.method
                    && o.rank == self.rank
                    && o.epsilon == self.epsilon
                    && o.moments.dims() == self.moments.dims()
            })
            .ok_or_else(|| merge_mismatch(self.method.name()))?;
        self.moments.merge(&other.moments)?;
        Ok(())
    }

    fn finalize(&self) -> Result<Box<dyn MultiViewModel>> {
        let dims = self.moments.dims().to_vec();
        let n = self.moments.count() as usize;
        match self.method {
            MomentMethod::Pca => {
                if self.rank == 0 {
                    return Err(CoreError::InvalidInput("rank must be positive".into()));
                }
                // Exactly PcaEstimator::fit: one PCA per view. select_views is a
                // bit-exact sub-accumulator, so each per-view fit sees the same
                // moments a standalone Pca::fit would have produced.
                let pcas = (0..dims.len())
                    .map(|p| Pca::fit_from_moments(&self.moments.select_views(&[p]), self.rank))
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                Ok(pca_model_from_parts(pcas, n))
            }
            MomentMethod::CcaBest | MomentMethod::CcaAverage => {
                let models = view_pairs(dims.len())
                    .into_iter()
                    .map(|(p, q)| {
                        Cca::fit_from_moments(
                            &self.moments.select_views(&[p, q]),
                            self.rank,
                            self.epsilon,
                        )
                    })
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                pairwise_cca_model_from_parts(
                    self.method == MomentMethod::CcaBest,
                    &dims,
                    models,
                    n,
                )
            }
            MomentMethod::MaxVar => {
                let inner = CcaMaxVar::fit_from_moments(&self.moments, self.rank, self.epsilon)?;
                Ok(cca_maxvar_model_from_parts(inner, &dims, n))
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// TCCA
// ---------------------------------------------------------------------------

/// Stats for TCCA: exact joint moments (means, view covariances) plus the raw
/// order-`m` moment tensor of mean-augmented samples.
///
/// Each sample contributes the outer product `(x₁,1) ∘ (x₂,1) ∘ … ∘ (xₘ,1)` to a
/// tensor of shape `Π (d_p + 1)`: choosing the extra index in mode `p`
/// marginalizes that mode, so this one tensor holds the raw moments `E_S` of every
/// view subset `S` at once. Finalize recovers the centered covariance tensor by
/// inclusion–exclusion over subsets,
/// `C = Σ_S (−1)^{m−|S|} E_S · Π_{p∉S} μ_p`.
pub struct TccaStats {
    options: TccaOptions,
    dims: Vec<usize>,
    /// Extended shape `d_p + 1` per view, first index fastest (tensor layout).
    ext_shape: Vec<usize>,
    moments: JointMoments,
    /// Flat raw-moment-tensor sums (not yet divided by the count).
    raw: Vec<f64>,
}

impl TccaStats {
    /// Fresh TCCA stats over views of the given dimensions.
    pub fn new(dims: &[usize], options: TccaOptions) -> Self {
        let ext_shape: Vec<usize> = dims.iter().map(|&d| d + 1).collect();
        let total = ext_shape.iter().product::<usize>().max(1);
        Self {
            options,
            dims: dims.to_vec(),
            ext_shape,
            moments: JointMoments::new(dims),
            raw: vec![0.0; total],
        }
    }

    /// The decomposition options the stats will finalize with.
    pub fn options(&self) -> &TccaOptions {
        &self.options
    }

    /// Per-view feature dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Accumulate one sample's extended outer product into `scratch`, then fold it
    /// into the raw sums.
    fn accumulate_sample(&mut self, views: &[Matrix], j: usize, scratch: &mut [f64]) {
        // Expand mode by mode, first view's index fastest, exactly like a
        // Khatri–Rao column: after mode p the leading Π_{q≤p}(d_q+1) entries hold
        // the partial outer product. Processed backwards so nothing is read after
        // it is overwritten.
        let d0 = self.dims[0];
        for i in 0..d0 {
            scratch[i] = views[0][(i, j)];
        }
        scratch[d0] = 1.0;
        let mut len = d0 + 1;
        for (p, v) in views.iter().enumerate().skip(1) {
            let d = self.dims[p];
            for k in (1..=d).rev() {
                let c = if k == d { 1.0 } else { v[(k, j)] };
                let (head, tail) = scratch.split_at_mut(k * len);
                for (t, &h) in tail[..len].iter_mut().zip(head[..len].iter()) {
                    *t = h * c;
                }
            }
            let c0 = v[(0, j)];
            for x in scratch[..len].iter_mut() {
                *x *= c0;
            }
            len *= d + 1;
        }
        for (r, &s) in self.raw.iter_mut().zip(scratch.iter()) {
            *r += s;
        }
    }

    /// The centered covariance tensor `C₁₂…ₘ` recovered by inclusion–exclusion.
    pub fn covariance_tensor(&self) -> Result<DenseTensor> {
        let m = self.dims.len();
        let n = self.moments.count();
        if n == 0 {
            return Err(CoreError::InvalidInput(
                "cannot finalize TCCA stats on zero instances".into(),
            ));
        }
        let inv_n = 1.0 / n as f64;
        let means: Vec<Vec<f64>> = (0..m).map(|p| self.moments.mean(p)).collect();
        let total: usize = self.dims.iter().product::<usize>().max(1);
        let mut data = vec![0.0; total];
        // Walk the output tensor (first index fastest) with an odometer index.
        let mut idx = vec![0usize; m];
        for slot in data.iter_mut() {
            let mut value = 0.0;
            // Subsets S of the modes: bit p set → take the sample index in mode p,
            // clear → take the marginalizing index d_p and multiply by μ_p.
            for mask in 0u32..(1u32 << m) {
                let mut flat = 0usize;
                let mut stride = 1usize;
                let mut mean_prod = 1.0;
                for (p, (&i, &ext)) in idx.iter().zip(self.ext_shape.iter()).enumerate() {
                    if mask & (1 << p) != 0 {
                        flat += i * stride;
                    } else {
                        flat += self.dims[p] * stride;
                        mean_prod *= means[p][i];
                    }
                    stride *= ext;
                }
                let sign = if (m - mask.count_ones() as usize).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                value += sign * self.raw[flat] * inv_n * mean_prod;
            }
            *slot = value;
            for (i, &d) in idx.iter_mut().zip(self.dims.iter()) {
                *i += 1;
                if *i < d {
                    break;
                }
                *i = 0;
            }
        }
        DenseTensor::from_vec(&self.dims, data).map_err(CoreError::Tensor)
    }

    /// Refit from the accumulated stats, optionally warm-starting the CP sweeps
    /// from a previous model's factors. Returns the fitted inner model and the
    /// sweep count.
    pub fn refit_inner(&self, warm_start: Option<&[Matrix]>) -> Result<(Tcca, usize)> {
        let m = self.dims.len();
        let means: Vec<Vec<f64>> = (0..m).map(|p| self.moments.mean(p)).collect();
        let covariances: Vec<Matrix> = (0..m).map(|p| self.moments.covariance(p, p)).collect();
        let tensor = self.covariance_tensor()?;
        let (inner, sweeps) =
            Tcca::fit_from_moments(means, &covariances, &tensor, &self.options, warm_start)?;
        Ok((inner, sweeps))
    }
}

impl SufficientStats for TccaStats {
    fn method(&self) -> &str {
        "TCCA"
    }

    fn count(&self) -> u64 {
        self.moments.count()
    }

    fn partial_fit(&mut self, views: &[Matrix]) -> Result<()> {
        let n = check_chunk(&self.dims, views)?;
        self.moments.update(views)?;
        let total = self.raw.len();
        let mut scratch = vec![0.0; total];
        for j in 0..n {
            self.accumulate_sample(views, j, &mut scratch);
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn SufficientStats) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<TccaStats>()
            .filter(|o| {
                o.dims == self.dims
                    && o.options.rank == self.options.rank
                    && o.options.epsilon == self.options.epsilon
            })
            .ok_or_else(|| merge_mismatch("TCCA"))?;
        self.moments.merge(&other.moments)?;
        for (r, &o) in self.raw.iter_mut().zip(other.raw.iter()) {
            *r += o;
        }
        Ok(())
    }

    fn finalize(&self) -> Result<Box<dyn MultiViewModel>> {
        let (inner, _sweeps) = self.refit_inner(None)?;
        Ok(tcca_model_from_parts(
            inner,
            &self.dims,
            self.moments.count() as usize,
        ))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn random_views(dims: &[usize], n: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        dims.iter()
            .map(|&d| {
                let mut v = Matrix::zeros(d, n);
                for j in 0..n {
                    for i in 0..d {
                        v[(i, j)] = rng.standard_normal();
                    }
                }
                v
            })
            .collect()
    }

    fn split_cols(views: &[Matrix], at: usize) -> (Vec<Matrix>, Vec<Matrix>) {
        let n = views[0].cols();
        let left: Vec<usize> = (0..at).collect();
        let right: Vec<usize> = (at..n).collect();
        (
            views.iter().map(|v| v.select_columns(&left)).collect(),
            views.iter().map(|v| v.select_columns(&right)).collect(),
        )
    }

    #[test]
    fn tcca_stats_recover_the_covariance_tensor() {
        let dims = [3usize, 4, 2];
        let views = random_views(&dims, 60, 5);
        let expected = tcca::covariance_tensor(&views).unwrap();

        let mut stats = TccaStats::new(&dims, TccaOptions::with_rank(2));
        let (a, b) = split_cols(&views, 23);
        stats.partial_fit(&a).unwrap();
        let mut tail = TccaStats::new(&dims, TccaOptions::with_rank(2));
        tail.partial_fit(&b).unwrap();
        stats.merge(&tail).unwrap();

        let got = stats.covariance_tensor().unwrap();
        assert_eq!(got.shape(), expected.shape());
        let err: f64 = got
            .as_slice()
            .iter()
            .zip(expected.as_slice())
            .map(|(g, e)| (g - e).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-10, "max entry error {err}");
    }

    #[test]
    fn stats_reject_shape_and_family_mismatches() {
        let dims = [3usize, 2];
        let views = random_views(&dims, 10, 1);
        let mut stats = MomentStats::new(MomentMethod::MaxVar, &dims, 2, 1e-2);
        assert!(stats.partial_fit(&views[..1]).is_err());
        let bad = random_views(&[3, 5], 10, 2);
        assert!(stats.partial_fit(&bad).is_err());
        stats.partial_fit(&views).unwrap();

        // Different hyperparameters must not merge.
        let other = MomentStats::new(MomentMethod::MaxVar, &dims, 3, 1e-2);
        assert!(stats.merge(&other).is_err());
        // Different family must not merge.
        let other = FeatureStats::cat(&dims);
        assert!(stats.merge(&other).is_err());

        let mut feat = FeatureStats::bsf(&dims);
        feat.partial_fit(&views).unwrap();
        assert_eq!(feat.count(), 10);
        assert!(feat.merge(&stats).is_err());
    }
}
