//! Round-trip persistence tests: every method in the built-in registry must survive
//! fit → save → load with **bit-identical** `transform` / `outputs` results, and the
//! codec must reject corrupt, truncated and version-mismatched files with
//! descriptive errors.

use datasets::{center_kernel, gram_matrix, secstr_dataset, Kernel, SecStrConfig};
use linalg::Matrix;
use mvcore::{CoreError, EstimatorRegistry, FitSpec, InputKind, Output, WhitenSpec};

const N: usize = 40;

fn fixture_views() -> Vec<Matrix> {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: N,
        seed: 23,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..10.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

fn fixture_kernels() -> Vec<Matrix> {
    fixture_views()
        .iter()
        .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
        .collect()
}

fn spec() -> FitSpec {
    FitSpec::with_rank(2)
        .epsilon(1e-2)
        .seed(5)
        .max_iterations(8)
        .per_view_dim(6)
}

fn output_matrix(output: &Output) -> &Matrix {
    match output {
        Output::Embedding(z) => z,
        Output::Distances(d) => d,
    }
}

/// Exact equality, not approximate: the codec stores `f64` bit patterns, so a loaded
/// model must reproduce the original's output to the last bit.
fn assert_bit_identical(a: &Matrix, b: &Matrix, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shapes differ");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{context}: entry ({i},{j}) differs: {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

#[test]
fn every_registry_method_roundtrips_bit_identically() {
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let kernels = fixture_kernels();
    let spec = spec();

    for name in registry.names() {
        let inputs = match registry.input_kind(name).unwrap() {
            InputKind::Views => &views,
            InputKind::Kernels => &kernels,
        };
        let model = registry.fit(name, inputs, &spec).unwrap();

        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = registry.load_model(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.name(), model.name(), "{name}: name mismatch");
        assert_eq!(loaded.dim(), model.dim(), "{name}: dim mismatch");
        assert_eq!(
            loaded.num_views(),
            model.num_views(),
            "{name}: num_views mismatch"
        );
        assert_eq!(
            loaded.input_kind(),
            model.input_kind(),
            "{name}: input kind mismatch"
        );
        assert_eq!(
            loaded.combine(),
            model.combine(),
            "{name}: combine rule mismatch"
        );
        assert_eq!(
            loaded.memory(),
            model.memory(),
            "{name}: memory model mismatch"
        );

        // transform (where defined) must agree bit for bit.
        match (model.transform(inputs), loaded.transform(inputs)) {
            (Ok(a), Ok(b)) => assert_bit_identical(&a, &b, name),
            (Err(_), Err(_)) => {} // BSF/BSK/AVG define no single embedding
            (a, b) => panic!("{name}: transform disagreement: {a:?} vs {b:?}"),
        }

        // outputs always exist and must agree candidate by candidate.
        let a = model.outputs(inputs).unwrap();
        let b = loaded.outputs(inputs).unwrap();
        assert_eq!(a.len(), b.len(), "{name}: candidate counts differ");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_bit_identical(output_matrix(x), output_matrix(y), name);
        }

        // Saving the loaded model reproduces the original bytes exactly (the state
        // listing is deterministic), so persistence is idempotent.
        let mut buf2 = Vec::new();
        loaded.save(&mut buf2).unwrap();
        assert_eq!(buf, buf2, "{name}: second save differs from the first");
    }
}

#[test]
fn out_of_sample_transform_matches_after_roundtrip() {
    // The serving path: project *held-out* instances through a loaded model.
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let spec = spec();
    let holdout: Vec<Matrix> = views
        .iter()
        .map(|v| v.select_columns(&[0, 3, 7, 11, 19]))
        .collect();

    for name in ["TCCA", "CCA-LS", "CCA-MAXVAR", "PCA", "CAT", "CCA (AVG)"] {
        let model = registry.fit(name, &views, &spec).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = registry.load_model(&mut buf.as_slice()).unwrap();
        let a = model.transform(&holdout).unwrap();
        let b = loaded.transform(&holdout).unwrap();
        assert_bit_identical(&a, &b, name);
        assert_eq!(a.rows(), 5, "{name}: held-out instance count");
    }
}

#[test]
fn transductive_models_keep_their_fingerprints() {
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let spec = spec();
    for name in ["DSE", "SSMVD"] {
        let model = registry.fit(name, &views, &spec).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = registry.load_model(&mut buf.as_slice()).unwrap();
        // The training batch is still accepted…
        let a = model.transform(&views).unwrap();
        let b = loaded.transform(&views).unwrap();
        assert_bit_identical(&a, &b, name);
        // …and a different batch is still rejected as out-of-sample.
        let other: Vec<Matrix> = views.iter().map(|v| v.scale(2.0)).collect();
        assert!(loaded.transform(&other).is_err(), "{name}");
    }
}

#[test]
fn whitened_models_roundtrip_bit_identically() {
    // Whitening changes how TCCA / KTCCA fit, but not the shape of the fitted
    // model — so the existing persistence format must carry whitened models
    // unchanged, bit for bit, including on held-out instances.
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let kernels = fixture_kernels();
    let holdout: Vec<Matrix> = views
        .iter()
        .map(|v| v.select_columns(&[0, 3, 7, 11, 19]))
        .collect();
    let kernel_blocks: Vec<Matrix> = kernels
        .iter()
        .map(|k| k.select_rows(&[0, 3, 7, 11, 19]))
        .collect();

    for whiten in [WhitenSpec::Exact, WhitenSpec::randomized()] {
        let spec = spec().whiten(whiten);

        let model = registry.fit("TCCA", &views, &spec).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = registry.load_model(&mut buf.as_slice()).unwrap();
        assert_bit_identical(
            &model.transform(&holdout).unwrap(),
            &loaded.transform(&holdout).unwrap(),
            &format!("TCCA {whiten:?}"),
        );

        let model = registry.fit("KTCCA", &kernels, &spec).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = registry.load_model(&mut buf.as_slice()).unwrap();
        assert_bit_identical(
            &model.transform(&kernel_blocks).unwrap(),
            &loaded.transform(&kernel_blocks).unwrap(),
            &format!("KTCCA {whiten:?}"),
        );
    }
}

#[test]
fn stage_pipelines_roundtrip_bit_identically_for_every_combo() {
    use mvcore::estimators::PcaEstimator;
    use mvcore::{MultiViewEstimator, Pipeline};

    // Synthetic noisy views (every feature has variance, so `scale` is legal).
    let n = 30;
    let mut views = vec![Matrix::zeros(6, n), Matrix::zeros(5, n)];
    for (p, v) in views.iter_mut().enumerate() {
        for j in 0..n {
            let t = if j % 3 == 0 { 1.4 } else { -0.5 };
            for i in 0..v.rows() {
                v[(i, j)] =
                    t * (i as f64 + 1.0) + ((i + 7 * p) as f64 * 2.3 + j as f64 * 0.9).sin();
            }
        }
    }
    let holdout: Vec<Matrix> = views
        .iter()
        .map(|v| v.select_columns(&[1, 4, 9, 16]))
        .collect();

    let build = |with_pca: bool| {
        let mut b = Pipeline::builder().standardize();
        if with_pca {
            b = b.pca();
        }
        b.whiten_from_spec().build(Box::new(PcaEstimator))
    };

    for whiten in [
        WhitenSpec::None,
        WhitenSpec::Exact,
        WhitenSpec::randomized(),
    ] {
        for (center, scale) in [(false, false), (true, false), (true, true)] {
            for with_pca in [false, true] {
                let context =
                    format!("whiten={whiten:?} center={center} scale={scale} pca={with_pca}");
                let spec = FitSpec::with_rank(2)
                    .per_view_dim(3)
                    .center(center)
                    .scale(scale)
                    .whiten(whiten);
                let model = build(with_pca).fit(&views, &spec).unwrap();
                let state = model.save_state().unwrap();
                let loaded = build(with_pca).load_state(&state).unwrap();
                assert_bit_identical(
                    &model.transform(&holdout).unwrap(),
                    &loaded.transform(&holdout).unwrap(),
                    &context,
                );
                // Saving the loaded model reproduces the original state exactly.
                assert_eq!(
                    state.names(),
                    loaded.save_state().unwrap().names(),
                    "{context}: section layout changed across the round-trip"
                );
            }
        }
    }
}

#[test]
fn loading_unregistered_methods_fails_cleanly() {
    let full = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let model = full.fit("TCCA", &views, &spec()).unwrap();
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();

    // A registry without TCCA cannot load the file, and says so.
    let empty = EstimatorRegistry::new();
    match empty.load_model(&mut buf.as_slice()) {
        Err(CoreError::UnknownEstimator { name, .. }) => assert_eq!(name, "TCCA"),
        Err(other) => panic!("expected UnknownEstimator, got {other:?}"),
        Ok(_) => panic!("expected UnknownEstimator, loading succeeded"),
    }
}

/// `Box<dyn MultiViewModel>` has no `Debug`, so unwrap the error by hand.
fn load_err(registry: &EstimatorRegistry, bytes: &[u8]) -> CoreError {
    match registry.load_model(&mut &bytes[..]) {
        Err(e) => e,
        Ok(_) => panic!("expected loading to fail"),
    }
}

#[test]
fn corrupt_files_are_rejected_at_registry_level() {
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    let model = registry.fit("PCA", &views, &spec()).unwrap();
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();

    // Bad magic.
    let mut bad = buf.clone();
    bad[1] = b'?';
    let err = load_err(&registry, &bad);
    assert!(err.to_string().contains("magic"), "{err}");

    // Version from the future (the current format is 2).
    let mut bad = buf.clone();
    bad[4..8].copy_from_slice(&3u32.to_le_bytes());
    let err = load_err(&registry, &bad);
    assert!(err.to_string().contains("version 3"), "{err}");

    // Truncation at several depths: inside the header and inside the payload.
    for keep in [3usize, 10, buf.len() / 2, buf.len() - 1] {
        let err = load_err(&registry, &buf[..keep]);
        assert!(err.to_string().contains("truncated"), "keep={keep}: {err}");
    }

    // A flipped payload bit fails the checksum before any section is trusted.
    let mut bad = buf.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    let err = load_err(&registry, &bad);
    assert!(err.to_string().contains("checksum"), "{err}");
}
