//! Trait-conformance test: every estimator in the built-in registry fits on a shared
//! SecStr-like fixture and honours the `MultiViewEstimator` contract — embedding shape
//! `(N, dim)`, determinism under a fixed seed, and registry-name round-trips.

use datasets::{center_kernel, gram_matrix, secstr_dataset, Kernel, SecStrConfig};
use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, InputKind, Output};

const N: usize = 60;

/// The shared fixture: a small SecStr-like dataset, each view trimmed to its first 12
/// features so the order-3 covariance tensor stays tiny and the whole registry sweep
/// runs quickly in debug builds.
fn fixture_views() -> Vec<Matrix> {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: N,
        seed: 11,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..12.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

fn fixture_kernels() -> Vec<Matrix> {
    fixture_views()
        .iter()
        .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
        .collect()
}

fn spec() -> FitSpec {
    FitSpec::with_rank(2)
        .epsilon(1e-2)
        .seed(3)
        .max_iterations(10)
        .per_view_dim(8)
}

fn output_matrix(output: &Output) -> &Matrix {
    match output {
        Output::Embedding(z) => z,
        Output::Distances(d) => d,
    }
}

fn assert_outputs_equal(a: &[Output], b: &[Output], name: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "{name}: candidate counts differ across refits"
    );
    for (x, y) in a.iter().zip(b.iter()) {
        let (x, y) = (output_matrix(x), output_matrix(y));
        assert_eq!(x.shape(), y.shape(), "{name}: candidate shapes differ");
        let mut max_diff = 0.0f64;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                max_diff = max_diff.max((x[(i, j)] - y[(i, j)]).abs());
            }
        }
        assert_eq!(max_diff, 0.0, "{name}: refit with the same seed differs");
    }
}

fn conformance_sweep(kind: InputKind, inputs: &[Matrix]) {
    let registry = EstimatorRegistry::with_builtin();
    let names = registry.names_of(kind);
    assert!(!names.is_empty());
    for name in names {
        let estimator = registry.get(name).unwrap();
        assert_eq!(estimator.name(), name);
        assert_eq!(estimator.input_kind(), kind);

        let model = estimator
            .fit(inputs, &spec())
            .unwrap_or_else(|e| panic!("{name}: fit failed: {e}"));
        assert_eq!(model.name(), name, "model must report its registry name");

        // Registry names round-trip through the fitted model.
        assert!(
            registry.get(model.name()).is_ok(),
            "{name}: model name does not resolve in the registry"
        );

        // Every candidate representation covers all N instances; embeddings are
        // finite and, where a single embedding exists, match the advertised dim.
        let outputs = model
            .outputs(inputs)
            .unwrap_or_else(|e| panic!("{name}: outputs failed: {e}"));
        assert!(!outputs.is_empty(), "{name}: no candidates");
        for output in &outputs {
            assert_eq!(output.len(), N, "{name}: candidate instance count");
            if let Output::Embedding(z) = output {
                assert!(z.all_finite(), "{name}: non-finite embedding");
            }
        }
        if let Ok(z) = model.transform(inputs) {
            assert_eq!(z.shape(), (N, model.dim()), "{name}: transform shape");
        } else {
            // Models without a single embedding (BSK, AVG) advertise dim 0 and still
            // provide their candidates through outputs().
            assert_eq!(model.dim(), 0, "{name}: transform failed but dim != 0");
        }

        // Cost accounting is recorded uniformly through the trait.
        assert!(
            model.memory().total_bytes() > 0,
            "{name}: empty memory model"
        );

        // Determinism under a fixed seed: a refit reproduces the candidates exactly.
        let refit = registry.fit(name, inputs, &spec()).unwrap();
        assert_outputs_equal(&outputs, &refit.outputs(inputs).unwrap(), name);
    }
}

#[test]
fn every_linear_estimator_conforms() {
    conformance_sweep(InputKind::Views, &fixture_views());
}

#[test]
fn every_kernel_estimator_conforms() {
    conformance_sweep(InputKind::Kernels, &fixture_kernels());
}

#[test]
fn transductive_models_reject_out_of_sample_instances() {
    let registry = EstimatorRegistry::with_builtin();
    let views = fixture_views();
    for name in ["DSE", "SSMVD"] {
        let model = registry.fit(name, &views, &spec()).unwrap();
        // Same instance count: the train-time consensus comes back.
        let z = model.transform(&views).unwrap();
        assert_eq!(z.shape(), (N, model.dim()));
        // Different instance count: a descriptive transductivity error.
        let shorter: Vec<Matrix> = views
            .iter()
            .map(|v| v.select_columns(&(0..N / 2).collect::<Vec<_>>()))
            .collect();
        let err = model.transform(&shorter).unwrap_err();
        assert!(err.to_string().contains("transductive"), "{name}: {err}");
        // A *different* batch with the same instance count must also be rejected —
        // returning the cached training consensus for it would silently mislabel
        // held-out data.
        let mut perturbed = views.clone();
        perturbed[0] = perturbed[0].scale(2.0);
        let err = model.transform(&perturbed).unwrap_err();
        assert!(err.to_string().contains("transductive"), "{name}: {err}");
    }
}

#[test]
fn spec_epsilon_reaches_the_estimators() {
    // Heavier regularization must shrink TCCA's leading canonical correlation, which
    // shows FitSpec fields actually flow through the trait into the methods.
    let views = fixture_views();
    let registry = EstimatorRegistry::with_builtin();
    let light = registry
        .fit("TCCA", &views, &spec().epsilon(1e-4))
        .unwrap()
        .transform(&views)
        .unwrap();
    let heavy = registry
        .fit("TCCA", &views, &spec().epsilon(10.0))
        .unwrap()
        .transform(&views)
        .unwrap();
    let norm = |z: &Matrix| {
        let mut s = 0.0;
        for i in 0..z.rows() {
            for j in 0..z.cols() {
                s += z[(i, j)] * z[(i, j)];
            }
        }
        s.sqrt()
    };
    assert!(norm(&heavy) < norm(&light));
}
