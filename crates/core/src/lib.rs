//! `mvcore` — the workspace-wide unified estimator API.
//!
//! The paper's core claim (Luo et al., ICDE 2016) is that TCCA subsumes the
//! pairwise-correlation family — CCA, CCA-LS, CCA-MAXVAR, DSE, SSMVD, KCCA — under one
//! higher-order objective. This crate gives the *code* the same shape the *math* has:
//!
//! * [`MultiViewEstimator`] / [`MultiViewModel`] — one object-safe `fit`/`transform`
//!   contract for every method, with a single [`CoreError`] every per-crate error
//!   converts into,
//! * [`FitSpec`] — one builder unifying rank / ε / seed / iteration budget /
//!   per-view-PCA width / decomposition method / center+scale preprocessing,
//! * [`EstimatorRegistry`] — name → estimator dispatch for the paper's whole method
//!   table, so harnesses, examples and future serving layers construct methods
//!   uniformly and new methods (DTCCA, higher-order correlation analysis, …)
//!   register in exactly one place,
//! * [`Pipeline`] — the center/scale → per-view PCA → estimator combinator that
//!   replaces the preprocessing previously hand-rolled inside DSE and SSMVD,
//! * [`MemoryModel`] — the allocation model behind the paper's memory-cost curves,
//!   recorded by every model at fit time.
//!
//! ```
//! use linalg::Matrix;
//! use mvcore::{EstimatorRegistry, FitSpec};
//!
//! // Three tiny views of 40 instances sharing a skewed 1-D latent signal.
//! let n = 40;
//! let mut views = vec![Matrix::zeros(3, n), Matrix::zeros(4, n), Matrix::zeros(2, n)];
//! for j in 0..n {
//!     let t = if j % 4 == 0 { 1.5 } else { -0.4 };
//!     for v in views.iter_mut() {
//!         for i in 0..v.rows() {
//!             v[(i, j)] = t * (i as f64 + 1.0);
//!         }
//!     }
//! }
//!
//! // Any registered method fits through the same two lines.
//! let registry = EstimatorRegistry::with_builtin();
//! let spec = FitSpec::with_rank(1).epsilon(1e-2).seed(7);
//! for name in ["TCCA", "CCA-LS", "CCA (AVG)"] {
//!     let model = registry.fit(name, &views, &spec).unwrap();
//!     let z = model.transform(&views).unwrap();
//!     assert_eq!(z.rows(), n);
//!     assert_eq!(z.cols(), model.dim());
//!     assert!(registry.get(model.name()).is_ok()); // names round-trip
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod error;
pub mod estimators;
mod memcost;
mod model;
pub mod persist;
mod pipeline;
mod preprocess;
mod registry;
mod spec;
mod stage;
mod streaming;

pub use error::CoreError;
pub use memcost::MemoryModel;
pub use model::{
    check_same_instances, check_square_kernels, CombineRule, InputKind, MultiViewEstimator,
    MultiViewModel, Output, ViewProjection,
};
pub use persist::{ModelMeta, ModelState};
pub use pipeline::{Pipeline, PipelineBuilder};
pub use preprocess::Standardizer;
pub use registry::{EstimatorFactory, EstimatorRegistry};
pub use spec::{
    FitSpec, WhitenSpec, DEFAULT_DECOMPOSITION_ITERATIONS, DEFAULT_PER_VIEW_DIM,
    DEFAULT_WHITEN_OVERSAMPLE, DEFAULT_WHITEN_POWER_ITERS,
};
pub use stage::{FittedStage, PcaReduce, Standardize, ViewStage, Whiten};
pub use streaming::{StreamingEstimator, SufficientStats};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
