//! The workspace-wide estimator error type.
//!
//! Every per-crate error (`linalg::LinalgError`, `tensor::TensorError`,
//! `baselines::BaselineError`, `tcca::TccaError`) converts into [`CoreError`] via
//! `From`, so code written against the [`crate::MultiViewEstimator`] trait handles one
//! error type regardless of which method is behind the trait object.

use std::fmt;

/// Unified error type of the [`crate::MultiViewEstimator`] API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Inputs had inconsistent shapes or invalid parameters.
    InvalidInput(String),
    /// A preprocessing stage met a feature it cannot transform — e.g. scaling a
    /// zero-variance column, whose inverse standard deviation is undefined. Carries
    /// the offending column (feature row) index so callers can point at the data.
    DegenerateFeature {
        /// Index of the degenerate feature row within its view.
        column: usize,
        /// What made it degenerate.
        reason: String,
    },
    /// A method name was not found in the [`crate::EstimatorRegistry`].
    UnknownEstimator {
        /// The requested name.
        name: String,
        /// The names the registry does know, in registration order.
        known: Vec<String>,
    },
    /// An underlying dense linear-algebra routine failed.
    Linalg(linalg::LinalgError),
    /// An underlying tensor operation or decomposition failed.
    Tensor(tensor::TensorError),
    /// Saving or loading a serialized model failed (I/O, corruption, bad format
    /// version, checksum mismatch, missing or mistyped sections).
    Persist(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::DegenerateFeature { column, reason } => {
                write!(f, "degenerate feature at column {column}: {reason}")
            }
            CoreError::UnknownEstimator { name, known } => {
                write!(
                    f,
                    "unknown estimator {name:?}; registered: {}",
                    known.join(", ")
                )
            }
            CoreError::Linalg(err) => write!(f, "linear algebra failure: {err}"),
            CoreError::Tensor(err) => write!(f, "tensor failure: {err}"),
            CoreError::Persist(msg) => write!(f, "model persistence failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for CoreError {
    fn from(err: linalg::LinalgError) -> Self {
        CoreError::Linalg(err)
    }
}

impl From<tensor::TensorError> for CoreError {
    fn from(err: tensor::TensorError) -> Self {
        CoreError::Tensor(err)
    }
}

impl From<baselines::BaselineError> for CoreError {
    fn from(err: baselines::BaselineError) -> Self {
        match err {
            baselines::BaselineError::InvalidInput(msg) => CoreError::InvalidInput(msg),
            baselines::BaselineError::Linalg(e) => CoreError::Linalg(e),
        }
    }
}

impl From<tcca::TccaError> for CoreError {
    fn from(err: tcca::TccaError) -> Self {
        match err {
            tcca::TccaError::InvalidInput(msg) => CoreError::InvalidInput(msg),
            tcca::TccaError::Linalg(e) => CoreError::Linalg(e),
            tcca::TccaError::Tensor(e) => CoreError::Tensor(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn every_workspace_error_converts() {
        let e: CoreError = linalg::LinalgError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(matches!(e, CoreError::Linalg(_)));
        assert!(e.source().is_some());

        let e: CoreError = tensor::TensorError::InvalidArgument("rank".into()).into();
        assert!(matches!(e, CoreError::Tensor(_)));

        let e: CoreError = baselines::BaselineError::InvalidInput("views".into()).into();
        assert_eq!(e, CoreError::InvalidInput("views".into()));

        let e: CoreError =
            baselines::BaselineError::Linalg(linalg::LinalgError::NotSquare { rows: 3, cols: 1 })
                .into();
        assert!(matches!(e, CoreError::Linalg(_)));

        let e: CoreError = tcca::TccaError::InvalidInput("two views".into()).into();
        assert_eq!(e, CoreError::InvalidInput("two views".into()));

        let e: CoreError =
            tcca::TccaError::Tensor(tensor::TensorError::InvalidArgument("rank".into())).into();
        assert!(matches!(e, CoreError::Tensor(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = CoreError::UnknownEstimator {
            name: "TCCA2".into(),
            known: vec!["TCCA".into(), "CCA-LS".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("TCCA2") && msg.contains("CCA-LS"), "{msg}");
        assert!(e.source().is_none());

        let e = CoreError::InvalidInput("rank must be positive".into());
        assert!(e.to_string().contains("rank must be positive"));
    }
}
