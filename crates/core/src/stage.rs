//! The composable per-view preprocessing stage API.
//!
//! A [`crate::Pipeline`] used to hard-code its preamble (center/scale, then maybe
//! PCA). This module turns that preamble into a *stage list*: each [`ViewStage`] is
//! an unfitted stage description that fits one view into a [`FittedStage`] — a
//! replayable `d_in × M → d_out × M` transformation that saves and loads its state
//! through MVTC sections, so served models replay exactly the training-time
//! preprocessing at transform time.
//!
//! Built-in stages:
//!
//! | stage | fit | apply | state sections |
//! |---|---|---|---|
//! | [`Standardize`] | per-feature mean / std (driven by `spec.center` / `spec.scale`) | `(x − μ) ⊙ σ⁻¹` | `means`, `inverse_stds` |
//! | [`PcaReduce`] | top `spec.effective_per_view_dim()` principal directions | `Wᵀ(x − μ)` | `mean`, `components`, `variance` |
//! | [`Whiten`] (exact) | dense `(C + εI)^{-1/2}` | `W(x − μ)` | `mean`, `weights` |
//! | [`Whiten`] (randomized) | seeded range-finder over the sketched covariance | `Wᵀ(x − μ)`, `W = U(Λ + εI)^{-1/2}` | `mean`, `weights` |
//!
//! Every fitted stage that is a shifted projection implements
//! [`FittedStage::apply_cols`] through the zero-copy
//! [`linalg::ColsView::shifted_t_matmul`] path, so a stage-bearing pipeline still
//! projects coalesced serving batches straight out of request buffers.

use crate::estimators::{load_pca, save_pca};
use crate::preprocess::Standardizer;
use crate::{CoreError, FitSpec, ModelState, Result, WhitenSpec};
use baselines::Pca;
use linalg::{center_rows, covariance, randomized_covariance_eig, ColsView, Matrix};

/// Eigenvalue floor shared with the exact TCCA whitening path.
const WHITEN_FLOOR: f64 = 1e-12;

/// An unfitted preprocessing stage: a description that can fit any view.
///
/// A stage may be **inert** under a given [`FitSpec`] (e.g. [`Standardize`] when
/// neither `center` nor `scale` is set, or [`Whiten`] deferring to a spec that says
/// [`WhitenSpec::None`]); inert stages return `Ok(None)` and drop out of the fitted
/// pipeline entirely, so persisted state never carries identity transforms.
pub trait ViewStage: Send + Sync {
    /// Stable identifier written into persisted state and used to re-dispatch on
    /// load (`"standardize"`, `"pca"`, `"whiten"`).
    fn kind(&self) -> &'static str;

    /// Fit the stage on view `which` (`d × N`, instances as columns), or `Ok(None)`
    /// when the spec makes this stage a no-op.
    fn fit(
        &self,
        which: usize,
        view: &Matrix,
        spec: &FitSpec,
    ) -> Result<Option<Box<dyn FittedStage>>>;
}

/// A fitted, replayable per-view transformation (`d_in × M → d_out × M`).
pub trait FittedStage: Send + Sync {
    /// The same identifier as the [`ViewStage`] that produced this state.
    fn kind(&self) -> &'static str;

    /// Transform a `d_in × M` view (any instance count).
    fn apply(&self, view: &Matrix) -> Result<Matrix>;

    /// Transform the horizontal concatenation of borrowed column blocks. Projection
    /// stages override this with the zero-copy shifted-GEMM path; the default
    /// materializes the view (counted by [`linalg::input_stitches`]).
    fn apply_cols(&self, cols: &ColsView<'_>) -> Result<Matrix> {
        self.apply(&cols.to_matrix())
    }

    /// Write the fitted state under `prefix/…` sections.
    fn save(&self, state: &mut ModelState, prefix: &str);
}

/// Rebuild a fitted stage from `prefix/…` sections, dispatching on the persisted
/// `kind` string. Unknown kinds are a persistence error (a file written by a newer
/// registry), not a panic.
pub fn load_fitted_stage(
    kind: &str,
    state: &ModelState,
    prefix: &str,
) -> Result<Box<dyn FittedStage>> {
    match kind {
        "standardize" => Ok(Box::new(FittedStandardize(Standardizer::from_parts(
            state.vector(&format!("{prefix}/means"))?.to_vec(),
            state.vector(&format!("{prefix}/inverse_stds"))?.to_vec(),
        )?))),
        "pca" => Ok(Box::new(FittedPca(load_pca(state, prefix)?))),
        "whiten" => {
            let mean = state.vector(&format!("{prefix}/mean"))?.to_vec();
            let weights = state.matrix(&format!("{prefix}/weights"))?.clone();
            Ok(Box::new(FittedWhiten::new(mean, weights)?))
        }
        other => Err(CoreError::Persist(format!(
            "unknown preprocessing stage kind {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Standardize
// ---------------------------------------------------------------------------

/// Per-feature center/scale stage, driven by `spec.center` / `spec.scale`. Inert
/// when both switches are off.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standardize;

impl ViewStage for Standardize {
    fn kind(&self) -> &'static str {
        "standardize"
    }

    fn fit(
        &self,
        _which: usize,
        view: &Matrix,
        spec: &FitSpec,
    ) -> Result<Option<Box<dyn FittedStage>>> {
        if !spec.center && !spec.scale {
            return Ok(None);
        }
        let scaler = Standardizer::fit(view, spec.center, spec.scale)?;
        Ok(Some(Box::new(FittedStandardize(scaler))))
    }
}

struct FittedStandardize(Standardizer);

impl FittedStage for FittedStandardize {
    fn kind(&self) -> &'static str {
        "standardize"
    }

    fn apply(&self, view: &Matrix) -> Result<Matrix> {
        self.0.apply(view)
    }

    fn save(&self, state: &mut ModelState, prefix: &str) {
        state.put_vector(format!("{prefix}/means"), self.0.means());
        state.put_vector(format!("{prefix}/inverse_stds"), self.0.inverse_stds());
    }
}

// ---------------------------------------------------------------------------
// PcaReduce
// ---------------------------------------------------------------------------

/// Per-view PCA reduction to `spec.effective_per_view_dim()` components (clamped by
/// the view's feature and instance counts, like the paper's DSE/SSMVD preamble).
#[derive(Debug, Clone, Copy, Default)]
pub struct PcaReduce;

impl ViewStage for PcaReduce {
    fn kind(&self) -> &'static str {
        "pca"
    }

    fn fit(
        &self,
        _which: usize,
        view: &Matrix,
        spec: &FitSpec,
    ) -> Result<Option<Box<dyn FittedStage>>> {
        let width = spec.effective_per_view_dim();
        if width == 0 {
            return Err(CoreError::InvalidInput(
                "per-view dimension must be positive".into(),
            ));
        }
        let k = width.min(view.rows()).min(view.cols().max(1));
        Ok(Some(Box::new(FittedPca(Pca::fit(view, k)?))))
    }
}

struct FittedPca(Pca);

impl FittedStage for FittedPca {
    fn kind(&self) -> &'static str {
        "pca"
    }

    fn apply(&self, view: &Matrix) -> Result<Matrix> {
        // Scores come back N × k; stages keep the d × N view layout.
        Ok(self.0.transform(view)?.transpose())
    }

    fn apply_cols(&self, cols: &ColsView<'_>) -> Result<Matrix> {
        Ok(self.0.transform_cols(cols)?.transpose())
    }

    fn save(&self, state: &mut ModelState, prefix: &str) {
        save_pca(state, prefix, &self.0);
    }
}

// ---------------------------------------------------------------------------
// Whiten
// ---------------------------------------------------------------------------

/// Per-view whitening stage. The mode comes either from the [`FitSpec`]
/// ([`Whiten::from_spec`], inert when the spec says [`WhitenSpec::None`]) or is
/// fixed at construction ([`Whiten::fixed`]).
///
/// * **Exact** — `W = (C + εI)^{-1/2}` via the dense Jacobi eigensolver: the
///   full-dimensional (`d × d`) whitening of the paper's preamble. `O(d³)`; small
///   `d` only.
/// * **Randomized** — seeded Gaussian range-finder over the sketched covariance
///   ([`linalg::randomized_covariance_eig`]): reduces *and* whitens to
///   `spec.effective_per_view_dim()` dimensions, `W = U (Λ + εI)^{-1/2}` (`d × k`),
///   without ever forming the `d × d` covariance — the path that fits `d ≈ 100k`
///   views in seconds. Bit-deterministic in `spec.seed` (each view's sketch stream
///   is derived from it) and independent of the thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Whiten {
    mode: Option<WhitenSpec>,
}

impl Whiten {
    /// A whitening stage that reads its mode from `spec.whiten` at fit time.
    pub fn from_spec() -> Self {
        Self { mode: None }
    }

    /// A whitening stage with a fixed mode, ignoring `spec.whiten`.
    pub fn fixed(mode: WhitenSpec) -> Self {
        Self { mode: Some(mode) }
    }
}

impl ViewStage for Whiten {
    fn kind(&self) -> &'static str {
        "whiten"
    }

    fn fit(
        &self,
        which: usize,
        view: &Matrix,
        spec: &FitSpec,
    ) -> Result<Option<Box<dyn FittedStage>>> {
        let mode = self.mode.unwrap_or(spec.whiten);
        match fit_whitener(view, mode, spec, stage_seed(spec.seed, which))? {
            None => Ok(None),
            Some((mean, weights)) => Ok(Some(Box::new(FittedWhiten::new(mean, weights)?))),
        }
    }
}

/// Derive a per-view sketch seed from the spec seed (distinct streams per view).
pub(crate) fn stage_seed(seed: u64, which: usize) -> u64 {
    seed ^ (which as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Compute a whitening transform `(mean, weights)` for one `d × N` view such that
/// the whitened view is `weightsᵀ · (X − mean·1ᵀ)`. Returns `None` for
/// [`WhitenSpec::None`]. Shared by the [`Whiten`] stage and the TCCA estimator's
/// high-dimensional fit path.
pub(crate) fn fit_whitener(
    view: &Matrix,
    mode: WhitenSpec,
    spec: &FitSpec,
    seed: u64,
) -> Result<Option<(Vec<f64>, Matrix)>> {
    match mode {
        WhitenSpec::None => Ok(None),
        WhitenSpec::Exact => {
            let (centered, mean) = center_rows(view);
            let mut c = covariance(&centered);
            c.add_diagonal(spec.epsilon);
            // Symmetric, so Wᵀ(X − μ) = W(X − μ): exactly the paper's whitening.
            let weights = c.inverse_sqrt_spd(WHITEN_FLOOR)?;
            Ok(Some((mean, weights)))
        }
        WhitenSpec::Randomized {
            oversample,
            power_iters,
        } => {
            let (centered, mean) = center_rows(view);
            let k = spec
                .effective_per_view_dim()
                .min(view.rows())
                .min(view.cols().max(1));
            let eig = randomized_covariance_eig(&centered, k, oversample, power_iters, seed)?;
            // W = U (Λ + εI)^{-1/2}: whitened coordinates in the recovered
            // eigenbasis (PCA whitening, truncated — reduce and whiten in one).
            let mut weights = eig.eigenvectors;
            for (j, &lambda) in eig.eigenvalues.iter().enumerate() {
                let inv = 1.0 / (lambda + spec.epsilon).max(WHITEN_FLOOR).sqrt();
                for i in 0..weights.rows() {
                    weights[(i, j)] *= inv;
                }
            }
            Ok(Some((mean, weights)))
        }
        // `WhitenSpec` is non-exhaustive; future modes must be wired here.
        #[allow(unreachable_patterns)]
        other => Err(CoreError::InvalidInput(format!(
            "unsupported whitening mode {other:?}"
        ))),
    }
}

struct FittedWhiten {
    mean: Vec<f64>,
    /// `d × k` (exact: `k = d`, symmetric; randomized: truncated eigenbasis).
    weights: Matrix,
}

impl FittedWhiten {
    fn new(mean: Vec<f64>, weights: Matrix) -> Result<Self> {
        if mean.len() != weights.rows() {
            return Err(CoreError::InvalidInput(format!(
                "whitening mean has {} entries but weights have {} rows",
                mean.len(),
                weights.rows()
            )));
        }
        Ok(Self { mean, weights })
    }
}

impl FittedStage for FittedWhiten {
    fn kind(&self) -> &'static str {
        "whiten"
    }

    fn apply(&self, view: &Matrix) -> Result<Matrix> {
        self.apply_cols(&ColsView::from_matrices([view])?)
    }

    fn apply_cols(&self, cols: &ColsView<'_>) -> Result<Matrix> {
        if cols.rows() != self.mean.len() {
            return Err(CoreError::InvalidInput(format!(
                "view has {} features but the whitener expects {}",
                cols.rows(),
                self.mean.len()
            )));
        }
        // Zero-copy: centering happens while the blocked GEMM packs.
        Ok(cols
            .shifted_t_matmul(Some(&self.mean), &self.weights)?
            .transpose())
    }

    fn save(&self, state: &mut ModelState, prefix: &str) {
        state.put_vector(format!("{prefix}/mean"), &self.mean);
        state.put_matrix(format!("{prefix}/weights"), &self.weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::SketchRng;

    fn noisy_view(d: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = SketchRng::new(seed);
        let mut x = Matrix::zeros(d, n);
        for j in 0..n {
            let shared = rng.standard_normal();
            for i in 0..d {
                let s = 1.0 / (i + 1) as f64;
                x[(i, j)] = 2.0 * shared * s + 0.3 * s * rng.standard_normal() + i as f64;
            }
        }
        x
    }

    #[test]
    fn inert_stages_fit_to_none() {
        let spec = FitSpec::with_rank(2);
        let v = noisy_view(4, 30, 1);
        assert!(Standardize.fit(0, &v, &spec).unwrap().is_none());
        assert!(Whiten::from_spec().fit(0, &v, &spec).unwrap().is_none());
        assert!(Whiten::fixed(WhitenSpec::None)
            .fit(0, &v, &spec)
            .unwrap()
            .is_none());
        // PCA is always active.
        assert!(PcaReduce.fit(0, &v, &spec).unwrap().is_some());
    }

    #[test]
    fn exact_whitening_decorrelates() {
        let spec = FitSpec::with_rank(2)
            .epsilon(1e-6)
            .whiten(WhitenSpec::Exact);
        let v = noisy_view(5, 400, 2);
        let fitted = Whiten::from_spec().fit(0, &v, &spec).unwrap().unwrap();
        let z = fitted.apply(&v).unwrap();
        assert_eq!(z.shape(), (5, 400));
        let c = covariance(&linalg::center_rows(&z).0);
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (c[(i, j)] - want).abs() < 0.05,
                    "whitened covariance [{i}][{j}] = {}",
                    c[(i, j)]
                );
            }
        }
    }

    #[test]
    fn randomized_whitening_reduces_and_decorrelates() {
        let spec = FitSpec::with_rank(2)
            .epsilon(1e-6)
            .per_view_dim(3)
            .whiten(WhitenSpec::randomized());
        let v = noisy_view(24, 500, 3);
        let fitted = Whiten::from_spec().fit(0, &v, &spec).unwrap().unwrap();
        let z = fitted.apply(&v).unwrap();
        assert_eq!(z.shape(), (3, 500));
        let c = covariance(&linalg::center_rows(&z).0);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (c[(i, j)] - want).abs() < 0.1,
                    "whitened covariance [{i}][{j}] = {}",
                    c[(i, j)]
                );
            }
        }
    }

    #[test]
    fn stage_state_round_trips_bit_identically() {
        let spec = FitSpec::with_rank(2)
            .center(true)
            .scale(true)
            .per_view_dim(3)
            .whiten(WhitenSpec::randomized());
        let v = noisy_view(10, 60, 4);
        let probe = noisy_view(10, 7, 5);
        for stage in [
            Box::new(Standardize) as Box<dyn ViewStage>,
            Box::new(PcaReduce),
            Box::new(Whiten::from_spec()),
            Box::new(Whiten::fixed(WhitenSpec::Exact)),
        ] {
            let fitted = stage.fit(0, &v, &spec).unwrap().unwrap();
            let mut state = ModelState::new();
            fitted.save(&mut state, "s");
            let reloaded = load_fitted_stage(fitted.kind(), &state, "s").unwrap();
            assert_eq!(
                fitted.apply(&probe).unwrap(),
                reloaded.apply(&probe).unwrap(),
                "stage {} did not round-trip bit-identically",
                fitted.kind()
            );
        }
        assert!(load_fitted_stage("nope", &ModelState::new(), "s").is_err());
    }

    #[test]
    fn apply_cols_matches_apply() {
        let spec = FitSpec::with_rank(2)
            .per_view_dim(4)
            .whiten(WhitenSpec::randomized());
        let v = noisy_view(8, 40, 6);
        let a = noisy_view(8, 3, 7);
        let b = noisy_view(8, 5, 8);
        let stitched = a.hstack(&b).unwrap();
        for stage in [
            Box::new(PcaReduce) as Box<dyn ViewStage>,
            Box::new(Whiten::from_spec()),
        ] {
            let fitted = stage.fit(0, &v, &spec).unwrap().unwrap();
            let cols = ColsView::from_matrices([&a, &b]).unwrap();
            assert_eq!(
                fitted.apply_cols(&cols).unwrap(),
                fitted.apply(&stitched).unwrap(),
                "stage {}",
                fitted.kind()
            );
        }
    }
}
