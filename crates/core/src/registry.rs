//! Name → estimator dispatch: the [`EstimatorRegistry`].
//!
//! The registry is the single place where method names (as printed in the paper's
//! tables) map to estimator factories. The experiment harness, the examples and any
//! future serving layer construct methods exclusively through it, so adding a new
//! method (DTCCA, higher-order correlation analysis, …) means implementing
//! [`MultiViewEstimator`] and registering one factory here — no `match` arms anywhere
//! else.

use crate::estimators;
use crate::{CoreError, FitSpec, InputKind, MultiViewEstimator, MultiViewModel, Result};
use linalg::Matrix;

/// A factory producing a fresh boxed estimator.
pub type EstimatorFactory = Box<dyn Fn() -> Box<dyn MultiViewEstimator> + Send + Sync>;

struct Entry {
    name: String,
    kind: InputKind,
    factory: EstimatorFactory,
}

/// Maps method display names to boxed estimator factories, preserving registration
/// order (the paper's table order for the built-in set).
#[derive(Default)]
pub struct EstimatorRegistry {
    entries: Vec<Entry>,
}

impl EstimatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with every method of the paper's evaluation:
    /// the linear set (BSF, CAT, CCA (BST)/(AVG), CCA-LS, CCA-MAXVAR, DSE, SSMVD,
    /// PCA, TCCA) followed by the kernel set (BSK, AVG, KCCA (BST)/(AVG), KTCCA).
    pub fn with_builtin() -> Self {
        let mut registry = Self::new();
        registry.register(Box::new(|| Box::new(estimators::Bsf)));
        registry.register(Box::new(|| Box::new(estimators::Cat)));
        registry.register(Box::new(|| {
            Box::new(estimators::PairwiseCcaEstimator::best())
        }));
        registry.register(Box::new(|| {
            Box::new(estimators::PairwiseCcaEstimator::average())
        }));
        registry.register(Box::new(|| Box::new(estimators::CcaLsEstimator)));
        registry.register(Box::new(|| Box::new(estimators::CcaMaxVarEstimator)));
        registry.register(Box::new(|| Box::new(estimators::dse_pipeline())));
        registry.register(Box::new(|| Box::new(estimators::ssmvd_pipeline())));
        registry.register(Box::new(|| Box::new(estimators::PcaEstimator)));
        registry.register(Box::new(|| Box::new(estimators::TccaEstimator)));
        registry.register(Box::new(|| Box::new(estimators::Bsk)));
        registry.register(Box::new(|| Box::new(estimators::AvgKernel)));
        registry.register(Box::new(|| {
            Box::new(estimators::PairwiseKccaEstimator::best())
        }));
        registry.register(Box::new(|| {
            Box::new(estimators::PairwiseKccaEstimator::average())
        }));
        registry.register(Box::new(|| Box::new(estimators::KtccaEstimator)));
        registry
    }

    /// Register a factory. The entry's name and input kind are read from a probe
    /// instance, which guarantees `registry.get(estimator.name())` round-trips.
    /// Re-registering a name replaces the previous factory.
    pub fn register(&mut self, factory: EstimatorFactory) {
        let probe = factory();
        let entry = Entry {
            name: probe.name().to_string(),
            kind: probe.input_kind(),
            factory,
        };
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
    }

    /// Construct a fresh estimator for a registered name.
    pub fn get(&self, name: &str) -> Result<Box<dyn MultiViewEstimator>> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| (e.factory)())
            .ok_or_else(|| CoreError::UnknownEstimator {
                name: name.to_string(),
                known: self.entries.iter().map(|e| e.name.clone()).collect(),
            })
    }

    /// Whether a name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The input kind a registered name expects.
    pub fn input_kind(&self, name: &str) -> Option<InputKind> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.kind)
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// The registered names expecting the given input kind, in registration order.
    pub fn names_of(&self, kind: InputKind) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Convenience: resolve `name` and fit it in one call.
    pub fn fit(
        &self,
        name: &str,
        inputs: &[Matrix],
        spec: &FitSpec,
    ) -> Result<Box<dyn MultiViewModel>> {
        self.get(name)?.fit(inputs, spec)
    }

    /// Load a model serialized with [`MultiViewModel::save`]: read and validate the
    /// `MVTC` header, verify the payload checksum, resolve the recorded method name
    /// to its registered estimator and let it rebuild the fitted model.
    pub fn load_model(&self, r: &mut dyn std::io::Read) -> Result<Box<dyn MultiViewModel>> {
        let (meta, state) = crate::persist::read_model(r)?;
        let estimator = self.get(&meta.method)?;
        let model = estimator.load_state(&state)?;
        if model.dim() != meta.dim || model.num_views() != meta.num_views {
            return Err(CoreError::Persist(format!(
                "loaded {:?} model disagrees with its header: dim {} vs {}, views {} vs {}",
                meta.method,
                model.dim(),
                meta.dim,
                model.num_views(),
                meta.num_views
            )));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_the_paper_tables() {
        let registry = EstimatorRegistry::with_builtin();
        for name in [
            "BSF",
            "CAT",
            "CCA (BST)",
            "CCA (AVG)",
            "CCA-LS",
            "CCA-MAXVAR",
            "DSE",
            "SSMVD",
            "PCA",
            "TCCA",
            "BSK",
            "AVG",
            "KCCA (BST)",
            "KCCA (AVG)",
            "KTCCA",
        ] {
            assert!(registry.contains(name), "missing {name}");
            let est = registry.get(name).unwrap();
            assert_eq!(est.name(), name);
        }
        assert_eq!(registry.names().len(), 15);
        assert_eq!(registry.names_of(InputKind::Views).len(), 10);
        assert_eq!(registry.names_of(InputKind::Kernels).len(), 5);
        assert_eq!(registry.input_kind("KTCCA"), Some(InputKind::Kernels));
        assert_eq!(registry.input_kind("TCCA"), Some(InputKind::Views));
    }

    #[test]
    fn unknown_names_report_the_known_set() {
        let registry = EstimatorRegistry::with_builtin();
        let err = match registry.get("DTCCA") {
            Err(e) => e,
            Ok(_) => panic!("expected an unknown-estimator error"),
        };
        match err {
            CoreError::UnknownEstimator { name, known } => {
                assert_eq!(name, "DTCCA");
                assert!(known.iter().any(|n| n == "TCCA"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn registration_replaces_and_extends() {
        let mut registry = EstimatorRegistry::new();
        assert!(registry.names().is_empty());
        registry.register(Box::new(|| Box::new(estimators::TccaEstimator)));
        assert_eq!(registry.names(), vec!["TCCA"]);
        // Re-registering the same name keeps a single entry.
        registry.register(Box::new(|| Box::new(estimators::TccaEstimator)));
        assert_eq!(registry.names(), vec!["TCCA"]);
    }
}
