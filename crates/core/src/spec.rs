//! [`FitSpec`]: the single hyper-parameter bundle shared by every estimator.
//!
//! Before this type existed each method had its own positional-argument `fit`
//! signature (`Cca::fit(&v1, &v2, rank, eps)` vs `Dse::fit(&views, rank,
//! per_view_dim)` vs `Ktcca::fit(&kernels, &options)`). `FitSpec` unifies them,
//! cca_zoo-style: one builder holding the subspace rank, the regularizer, the RNG
//! seed, the iteration budget, the per-view PCA pre-reduction width and the
//! center/scale preprocessing switches. Estimators read the fields they understand
//! and ignore the rest, so one spec can drive a whole registry sweep.

use tcca::{DecompositionMethod, TccaOptions};

/// Default per-view PCA width used by DSE/SSMVD when [`FitSpec::per_view_dim`] is
/// unset (the paper reduces each view to 100 principal components).
pub const DEFAULT_PER_VIEW_DIM: usize = 100;

/// Default tensor-decomposition iteration budget when
/// [`FitSpec::decomposition_iterations`] is unset (matches `TccaOptions::default`).
pub const DEFAULT_DECOMPOSITION_ITERATIONS: usize = 60;

/// Default sketch oversampling for [`WhitenSpec::Randomized`] (extra Gaussian probe
/// columns beyond the target rank; the standard recommendation of 5–10).
pub const DEFAULT_WHITEN_OVERSAMPLE: usize = 8;

/// Default subspace (power) iterations for [`WhitenSpec::Randomized`]; two rounds
/// sharpen the recovered range enough for whitening on any decaying spectrum.
pub const DEFAULT_WHITEN_POWER_ITERS: usize = 2;

/// How (and whether) a per-view whitening stage decorrelates the features before the
/// estimator runs. This is the structured replacement for growing [`FitSpec`] one
/// flat field per whitening knob.
///
/// * `None` — no whitening stage (estimators still whiten internally where their
///   math requires it, e.g. TCCA's covariance inverse square root).
/// * `Exact` — dense eigendecomposition of the `d × d` regularized covariance
///   (`(C + εI)^{-1/2}`); exact but `O(d³)`, for small `d` only.
/// * `Randomized` — seeded Gaussian range-finder over the sketched covariance:
///   never forms the `d × d` matrix, reducing *and* whitening to the estimator's
///   per-view width in `O(d·N·ℓ)` — the path that opens `d ≈ 100k` views. On kernel
///   inputs the same spec selects the Nyström landmark factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum WhitenSpec {
    /// No whitening stage.
    #[default]
    None,
    /// Dense `(C + εI)^{-1/2}` whitening (small `d` only).
    Exact,
    /// Randomized range-finder whitening (linear views) / Nyström (kernel inputs).
    Randomized {
        /// Extra sketch columns beyond the target rank.
        oversample: usize,
        /// Subspace-iteration rounds applied to the sketch.
        power_iters: usize,
    },
}

impl WhitenSpec {
    /// The randomized variant with the default oversample / power-iteration budget.
    pub fn randomized() -> Self {
        Self::Randomized {
            oversample: DEFAULT_WHITEN_OVERSAMPLE,
            power_iters: DEFAULT_WHITEN_POWER_ITERS,
        }
    }

    /// True when no whitening stage is requested.
    pub fn is_none(&self) -> bool {
        matches!(self, WhitenSpec::None)
    }

    /// The `(oversample, power_iters)` sketch budget when the randomized mode is
    /// selected, `None` otherwise.
    pub fn randomized_budget(&self) -> Option<(usize, usize)> {
        match self {
            WhitenSpec::Randomized {
                oversample,
                power_iters,
            } => Some((*oversample, *power_iters)),
            _ => None,
        }
    }
}

/// Unified fitting parameters understood by every [`crate::MultiViewEstimator`].
///
/// The struct is `#[non_exhaustive]`: construct it through [`FitSpec::default`] /
/// [`FitSpec::with_rank`] and the builder setters, so future stages can add fields
/// without breaking every struct-literal constructor again.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FitSpec {
    /// Dimension `r` of the learned common subspace (per view where applicable).
    pub rank: usize,
    /// Ridge / PLS regularizer ε (view covariances for the linear methods, the
    /// `K² + εK` penalty for the kernel methods).
    pub epsilon: f64,
    /// RNG seed for iterative solvers and decomposition initialization.
    pub seed: u64,
    /// General iteration budget for iterative solvers (coupled LS, IRLS).
    pub max_iterations: usize,
    /// Iteration budget specifically for the tensor decomposition of TCCA / KTCCA —
    /// the dominant cost, which experiments often cap far below the general budget;
    /// `None` means [`DEFAULT_DECOMPOSITION_ITERATIONS`].
    pub decomposition_iterations: Option<usize>,
    /// Convergence tolerance for iterative solvers.
    pub tolerance: f64,
    /// Per-view PCA width for methods with a pre-reduction stage (DSE, SSMVD and any
    /// [`crate::Pipeline::with_pca`] pipeline); `None` means [`DEFAULT_PER_VIEW_DIM`].
    pub per_view_dim: Option<usize>,
    /// Tensor decomposition algorithm for TCCA / KTCCA.
    pub decomposition: DecompositionMethod,
    /// Center each feature to zero mean before fitting (applied by
    /// [`crate::Pipeline`]; estimators additionally center internally where their
    /// math requires it).
    pub center: bool,
    /// Scale each feature to unit variance before fitting (applied by
    /// [`crate::Pipeline`]).
    pub scale: bool,
    /// Per-view whitening stage (none / exact / randomized), applied by
    /// [`crate::Pipeline`] whitening stages and consulted by TCCA / KTCCA to pick
    /// their whitening path.
    pub whiten: WhitenSpec,
}

impl Default for FitSpec {
    fn default() -> Self {
        Self {
            rank: 10,
            epsilon: 1e-2,
            seed: 7,
            max_iterations: 100,
            decomposition_iterations: None,
            tolerance: 1e-7,
            per_view_dim: None,
            decomposition: DecompositionMethod::Als,
            center: false,
            scale: false,
            whiten: WhitenSpec::None,
        }
    }
}

impl FitSpec {
    /// Default spec with the given subspace rank.
    pub fn with_rank(rank: usize) -> Self {
        Self {
            rank,
            ..Self::default()
        }
    }

    /// Builder-style setter for the subspace rank.
    pub fn rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Builder-style setter for the regularizer ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the general iteration budget.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builder-style setter for the tensor-decomposition iteration budget.
    pub fn decomposition_iterations(mut self, iterations: usize) -> Self {
        self.decomposition_iterations = Some(iterations);
        self
    }

    /// Builder-style setter for the convergence tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style setter for the per-view PCA pre-reduction width.
    pub fn per_view_dim(mut self, per_view_dim: usize) -> Self {
        self.per_view_dim = Some(per_view_dim);
        self
    }

    /// Builder-style setter for the tensor decomposition algorithm.
    pub fn decomposition(mut self, method: DecompositionMethod) -> Self {
        self.decomposition = method;
        self
    }

    /// Builder-style setter for the centering switch.
    pub fn center(mut self, center: bool) -> Self {
        self.center = center;
        self
    }

    /// Builder-style setter for the scaling switch.
    pub fn scale(mut self, scale: bool) -> Self {
        self.scale = scale;
        self
    }

    /// Builder-style setter for the whitening stage.
    pub fn whiten(mut self, whiten: WhitenSpec) -> Self {
        self.whiten = whiten;
        self
    }

    /// The per-view PCA width, falling back to the paper's default of 100.
    pub fn effective_per_view_dim(&self) -> usize {
        self.per_view_dim.unwrap_or(DEFAULT_PER_VIEW_DIM)
    }

    /// The iteration budget for the tensor decomposition of TCCA / KTCCA, falling
    /// back to the method's own default of 60.
    pub fn effective_decomposition_iterations(&self) -> usize {
        self.decomposition_iterations
            .unwrap_or(DEFAULT_DECOMPOSITION_ITERATIONS)
    }

    /// Project the spec onto the options understood by `Tcca` / `Ktcca`.
    pub fn tcca_options(&self) -> TccaOptions {
        TccaOptions {
            rank: self.rank,
            epsilon: self.epsilon,
            method: self.decomposition,
            max_iterations: self.effective_decomposition_iterations(),
            tolerance: self.tolerance,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_every_field() {
        let spec = FitSpec::with_rank(5)
            .epsilon(0.5)
            .seed(99)
            .max_iterations(17)
            .decomposition_iterations(9)
            .tolerance(1e-3)
            .per_view_dim(40)
            .decomposition(DecompositionMethod::Hopm)
            .center(true)
            .scale(true)
            .whiten(WhitenSpec::randomized());
        assert_eq!(spec.rank, 5);
        assert_eq!(spec.epsilon, 0.5);
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.max_iterations, 17);
        assert_eq!(spec.decomposition_iterations, Some(9));
        assert_eq!(spec.effective_decomposition_iterations(), 9);
        assert_eq!(spec.tolerance, 1e-3);
        assert_eq!(spec.per_view_dim, Some(40));
        assert_eq!(spec.effective_per_view_dim(), 40);
        assert_eq!(spec.decomposition, DecompositionMethod::Hopm);
        assert!(spec.center && spec.scale);
        assert_eq!(
            spec.whiten,
            WhitenSpec::Randomized {
                oversample: DEFAULT_WHITEN_OVERSAMPLE,
                power_iters: DEFAULT_WHITEN_POWER_ITERS
            }
        );
    }

    #[test]
    fn defaults_match_the_paper() {
        let spec = FitSpec::default();
        assert_eq!(spec.rank, 10);
        assert_eq!(spec.epsilon, 1e-2);
        assert_eq!(spec.effective_per_view_dim(), DEFAULT_PER_VIEW_DIM);
        assert_eq!(spec.decomposition, DecompositionMethod::Als);
        assert_eq!(
            spec.effective_decomposition_iterations(),
            DEFAULT_DECOMPOSITION_ITERATIONS
        );
        assert!(!spec.center && !spec.scale);
        assert!(spec.whiten.is_none());
    }

    #[test]
    fn tcca_options_projection_is_faithful() {
        let spec = FitSpec::with_rank(3)
            .epsilon(0.1)
            .seed(11)
            .max_iterations(9);
        let opts = spec.tcca_options();
        assert_eq!(opts.rank, 3);
        assert_eq!(opts.epsilon, 0.1);
        assert_eq!(opts.seed, 11);
        // Without an explicit decomposition budget the TCCA default applies…
        assert_eq!(opts.max_iterations, DEFAULT_DECOMPOSITION_ITERATIONS);
        // …and an explicit one takes precedence.
        let opts = spec.decomposition_iterations(4).tcca_options();
        assert_eq!(opts.max_iterations, 4);
        assert_eq!(opts.method, DecompositionMethod::Als);
    }
}
