//! Allocation model behind the paper's "memory cost" curves (Figs. 7–10, bottom).
//!
//! The MATLAB measurements in the paper are dominated by the live arrays each method
//! keeps around: covariance matrices or tensors, whiteners, kernels, factor matrices and
//! the produced embeddings. This model sums exactly those, in bytes of `f64` storage,
//! which reproduces the *shape* of the paper's curves (who needs more memory, how the
//! gap scales with the subspace dimension) without depending on allocator details.
//!
//! Every [`crate::MultiViewModel`] records its model during `fit`, so the experiment
//! harness reads cost accounting uniformly through the trait instead of re-deriving it
//! per method. (This type lived in the bench crate before the unified-estimator API;
//! `bench::memcost` re-exports it for compatibility.)

/// A running tally of the dominant live allocations of one method run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryModel {
    entries: Vec<(String, usize)>,
}

impl MemoryModel {
    /// Create an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a matrix of the given shape.
    pub fn add_matrix(&mut self, label: impl Into<String>, rows: usize, cols: usize) {
        self.entries.push((label.into(), rows * cols * 8));
    }

    /// Record a dense tensor with the given mode sizes.
    pub fn add_tensor(&mut self, label: impl Into<String>, shape: &[usize]) {
        let elems: usize = shape.iter().product();
        self.entries.push((label.into(), elems * 8));
    }

    /// Record an arbitrary number of bytes.
    pub fn add_bytes(&mut self, label: impl Into<String>, bytes: usize) {
        self.entries.push((label.into(), bytes));
    }

    /// Total modelled bytes.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Total in megabytes (the paper's plots label the unit "Megabits"; the comparison
    /// is relative, so the constant factor is irrelevant — we report MB).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// The individual entries (label, bytes).
    pub fn entries(&self) -> &[(String, usize)] {
        &self.entries
    }

    /// Merge another model into this one.
    pub fn merge(&mut self, other: &MemoryModel) {
        self.entries.extend(other.entries.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut m = MemoryModel::new();
        m.add_matrix("cov", 10, 10);
        m.add_tensor("tensor", &[4, 5, 6]);
        m.add_bytes("misc", 100);
        assert_eq!(m.total_bytes(), 10 * 10 * 8 + 120 * 8 + 100);
        assert_eq!(m.entries().len(), 3);
        assert!(m.total_megabytes() > 0.0);
    }

    #[test]
    fn merge_combines_entries() {
        let mut a = MemoryModel::new();
        a.add_matrix("x", 2, 2);
        let mut b = MemoryModel::new();
        b.add_matrix("y", 3, 3);
        a.merge(&b);
        assert_eq!(a.total_bytes(), (4 + 9) * 8);
    }

    #[test]
    fn empty_model_is_zero() {
        assert_eq!(MemoryModel::new().total_bytes(), 0);
    }
}
