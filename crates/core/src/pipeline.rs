//! [`Pipeline`]: a composable per-view preprocessing stage list in front of any
//! inner estimator.
//!
//! The paper's DSE and SSMVD runs reduce every view to 100 principal components
//! before learning the consensus; cca_zoo-style workflows standardize features
//! first; million-feature views need a whitening stage that never forms the
//! `d × d` covariance. All of these are [`crate::ViewStage`]s now: the pipeline
//! fits each stage per view (in order), feeds the transformed views to the inner
//! estimator, and replays the fitted stages on held-out instances at transform
//! time. Build one with [`Pipeline::builder`]:
//!
//! ```ignore
//! let pipeline = Pipeline::builder()
//!     .standardize()
//!     .pca()
//!     .whiten(WhitenSpec::randomized())
//!     .build(Box::new(DseConsensus));
//! ```
//!
//! The old constructors remain as shims: [`Pipeline::new`] is
//! `builder().standardize()` and [`Pipeline::with_pca`] is
//! `builder().standardize().pca()`, with identical semantics (standardization is
//! still gated on the spec's `center`/`scale` switches).

use crate::model::check_same_instances;
use crate::stage::load_fitted_stage;
use crate::{
    CombineRule, CoreError, FitSpec, FittedStage, InputKind, MemoryModel, ModelState,
    MultiViewEstimator, MultiViewModel, Output, PcaReduce, Result, Standardize, ViewProjection,
    ViewStage, WhitenSpec,
};
use linalg::{ColsView, Matrix};

/// An estimator combinator applying an ordered list of per-view preprocessing
/// stages before an inner estimator.
///
/// Each [`ViewStage`] may be inert under the given [`FitSpec`] (e.g.
/// [`Standardize`] when neither `center` nor `scale` is set): inert stages drop
/// out of the fitted model entirely, so a stage-less pipeline delegates
/// `transform_view_cols` / `view_projection` straight to the inner model and
/// keeps its zero-copy serving paths.
///
/// The pipeline reports the inner estimator's name, so registering
/// `Pipeline::builder().standardize().pca().build(Box::new(DseConsensus))` under
/// `"DSE"` is transparent to callers.
pub struct Pipeline {
    inner: Box<dyn MultiViewEstimator>,
    stages: Vec<Box<dyn ViewStage>>,
}

/// Builder for [`Pipeline`] stage lists. Stages apply in the order they are added.
#[derive(Default)]
pub struct PipelineBuilder {
    stages: Vec<Box<dyn ViewStage>>,
}

impl PipelineBuilder {
    /// Append a spec-gated center/scale stage (active when `spec.center` /
    /// `spec.scale` are set).
    pub fn standardize(mut self) -> Self {
        self.stages.push(Box::new(Standardize));
        self
    }

    /// Append a per-view PCA reduction to `spec.effective_per_view_dim()`
    /// components.
    pub fn pca(mut self) -> Self {
        self.stages.push(Box::new(PcaReduce));
        self
    }

    /// Append a whitening stage with a fixed mode (ignoring `spec.whiten`).
    pub fn whiten(mut self, mode: WhitenSpec) -> Self {
        self.stages.push(Box::new(crate::Whiten::fixed(mode)));
        self
    }

    /// Append a whitening stage that reads its mode from `spec.whiten` at fit
    /// time (inert when the spec says [`WhitenSpec::None`]).
    pub fn whiten_from_spec(mut self) -> Self {
        self.stages.push(Box::new(crate::Whiten::from_spec()));
        self
    }

    /// Append an arbitrary custom stage.
    pub fn stage(mut self, stage: Box<dyn ViewStage>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Wrap the inner estimator with the accumulated stage list.
    pub fn build(self, inner: Box<dyn MultiViewEstimator>) -> Pipeline {
        Pipeline {
            inner,
            stages: self.stages,
        }
    }
}

impl Pipeline {
    /// Start an empty stage list.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Wrap an estimator with standardization-only preprocessing (active when the
    /// spec's `center`/`scale` switches are set).
    #[deprecated(note = "use `Pipeline::builder().standardize().build(inner)`")]
    pub fn new(inner: Box<dyn MultiViewEstimator>) -> Self {
        Self::builder().standardize().build(inner)
    }

    /// Wrap an estimator with standardization plus per-view PCA pre-reduction to
    /// `spec.effective_per_view_dim()` components.
    #[deprecated(note = "use `Pipeline::builder().standardize().pca().build(inner)`")]
    pub fn with_pca(inner: Box<dyn MultiViewEstimator>) -> Self {
        Self::builder().standardize().pca().build(inner)
    }
}

/// One fitted stage across all views (`fitted[p]` transforms view `p`).
struct StageSlot {
    fitted: Vec<Box<dyn FittedStage>>,
}

impl StageSlot {
    fn kind(&self) -> &'static str {
        self.fitted[0].kind()
    }
}

impl MultiViewEstimator for Pipeline {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_kind(&self) -> InputKind {
        self.inner.input_kind()
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        check_same_instances(views)?;
        let mut memory = MemoryModel::new();

        let mut slots: Vec<StageSlot> = Vec::new();
        // Borrow the raw inputs until a stage actually transforms something — a
        // pipeline of inert stages must not deep-copy every view just to read it.
        let mut owned: Option<Vec<Matrix>> = None;
        for stage in &self.stages {
            let inputs: &[Matrix] = owned.as_deref().unwrap_or(views);
            // Whether the stage is active is a property of the spec, not of any
            // single view — decided on the first view, enforced on the rest.
            let Some(first) = stage.fit(0, &inputs[0], spec)? else {
                continue;
            };
            let mut fitted = vec![first];
            for (p, v) in inputs.iter().enumerate().skip(1) {
                fitted.push(stage.fit(p, v, spec)?.ok_or_else(|| {
                    CoreError::InvalidInput(format!(
                        "stage {:?} fitted view 0 but was inert on view {p}",
                        stage.kind()
                    ))
                })?);
            }
            let mut transformed = Vec::with_capacity(inputs.len());
            for (p, (f, v)) in fitted.iter().zip(inputs.iter()).enumerate() {
                let out = f.apply(v)?;
                memory.add_matrix(format!("{} view {p}", f.kind()), out.rows(), out.cols());
                transformed.push(out);
            }
            owned = Some(transformed);
            slots.push(StageSlot { fitted });
        }

        let inner = self.inner.fit(owned.as_deref().unwrap_or(views), spec)?;
        memory.merge(inner.memory());
        Ok(Box::new(PipelineModel {
            slots,
            inner,
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let len = state.index("stages/len")?;
        let mut slots = Vec::with_capacity(len);
        for i in 0..len {
            let kind = state.text(&format!("stages/{i}/kind"))?.to_string();
            let views = state.index(&format!("stages/{i}/views"))?;
            if views == 0 {
                return Err(CoreError::Persist(format!(
                    "persisted stage {i} ({kind:?}) covers no views"
                )));
            }
            let fitted = (0..views)
                .map(|p| load_fitted_stage(&kind, state, &format!("stages/{i}/{p}")))
                .collect::<Result<Vec<_>>>()?;
            slots.push(StageSlot { fitted });
        }
        let inner_name = state.text("inner/name")?;
        if inner_name != self.inner.name() {
            return Err(CoreError::Persist(format!(
                "pipeline inner model is {inner_name:?} but this pipeline wraps {:?}",
                self.inner.name()
            )));
        }
        let inner = self.inner.load_state(&state.nested("inner")?)?;
        Ok(Box::new(PipelineModel {
            slots,
            inner,
            memory: state.memory()?,
        }))
    }
}

struct PipelineModel {
    slots: Vec<StageSlot>,
    inner: Box<dyn MultiViewModel>,
    memory: MemoryModel,
}

impl PipelineModel {
    fn preprocessed_views(&self) -> Option<usize> {
        self.slots.first().map(|s| s.fitted.len())
    }

    fn stage_for<'a>(&self, slot: &'a StageSlot, which: usize) -> Result<&'a dyn FittedStage> {
        slot.fitted
            .get(which)
            .map(AsRef::as_ref)
            .ok_or_else(|| CoreError::InvalidInput(format!("view index {which} out of range")))
    }

    fn reduce_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let mut out = view.clone();
        for slot in &self.slots {
            out = self.stage_for(slot, which)?.apply(&out)?;
        }
        Ok(out)
    }

    fn reduce(&self, views: &[Matrix]) -> Result<Vec<Matrix>> {
        if let Some(m) = self.preprocessed_views() {
            if views.len() != m {
                return Err(CoreError::InvalidInput(format!(
                    "expected {m} views, got {}",
                    views.len()
                )));
            }
        }
        views
            .iter()
            .enumerate()
            .map(|(p, v)| self.reduce_view(p, v))
            .collect()
    }
}

impl MultiViewModel for PipelineModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        self.inner.transform(&self.reduce(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        self.inner
            .transform_view(which, &self.reduce_view(which, view)?)
    }

    fn transform_view_cols(&self, which: usize, cols: &ColsView<'_>) -> Result<Matrix> {
        let Some((head, tail)) = self.slots.split_first() else {
            // No stages: the inner model keeps its own zero-copy path.
            return self.inner.transform_view_cols(which, cols);
        };
        // The first stage consumes the borrowed column blocks directly (projection
        // stages center-while-packing instead of stitching); later stages and the
        // inner model see ordinary owned matrices.
        let mut out = self.stage_for(head, which)?.apply_cols(cols)?;
        for slot in tail {
            out = self.stage_for(slot, which)?.apply(&out)?;
        }
        self.inner.transform_view(which, &out)
    }

    fn view_projection(&self, which: usize) -> Option<ViewProjection<'_>> {
        // A staged transform is a composition, not a single shifted projection;
        // only a stage-less pipeline can expose the inner model's weights.
        if self.slots.is_empty() {
            self.inner.view_projection(which)
        } else {
            None
        }
    }

    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        self.inner.outputs(&self.reduce(views)?)
    }

    fn output_labels(&self) -> Vec<String> {
        self.inner.output_labels()
    }

    fn combine(&self) -> CombineRule {
        self.inner.combine()
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.preprocessed_views()
            .unwrap_or_else(|| self.inner.num_views())
    }

    fn input_kind(&self) -> InputKind {
        self.inner.input_kind()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("stages/len", self.slots.len() as u64);
        for (i, slot) in self.slots.iter().enumerate() {
            state.put_text(format!("stages/{i}/kind"), slot.kind());
            state.put_int(format!("stages/{i}/views"), slot.fitted.len() as u64);
            for (p, f) in slot.fitted.iter().enumerate() {
                f.save(&mut state, &format!("stages/{i}/{p}"));
            }
        }
        state.put_text("inner/name", self.inner.name());
        state.put_nested("inner", &self.inner.save_state()?);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::PcaEstimator;

    fn toy_views() -> Vec<Matrix> {
        let n = 24;
        let mut v1 = Matrix::zeros(6, n);
        let mut v2 = Matrix::zeros(5, n);
        for j in 0..n {
            let t = if j % 3 == 0 { 1.2 } else { -0.4 };
            for i in 0..6 {
                v1[(i, j)] = t * (i as f64 + 1.0) + 10.0 + (i as f64 * 7.3 + j as f64 * 1.9).sin();
            }
            for i in 0..5 {
                v2[(i, j)] = -t * (i as f64 + 0.5)
                    + (j as f64) * 0.01
                    + (i as f64 * 3.1 + j as f64 * 0.7).cos() * 0.2;
            }
        }
        vec![v1, v2]
    }

    #[test]
    fn pca_pipeline_reduces_each_view() {
        let views = toy_views();
        let pipeline = Pipeline::builder()
            .standardize()
            .pca()
            .build(Box::new(PcaEstimator));
        let spec = FitSpec::with_rank(2).per_view_dim(3);
        let model = pipeline.fit(&views, &spec).unwrap();
        assert_eq!(model.name(), "PCA");
        let z = model.transform(&views).unwrap();
        assert_eq!(z.rows(), 24);
        assert_eq!(z.cols(), model.dim());
        // The pipeline accounted for the PCA stage plus the inner model.
        assert!(model
            .memory()
            .entries()
            .iter()
            .any(|(l, _)| l.contains("pca view")));
    }

    #[test]
    fn deprecated_shims_match_the_builder() {
        let views = toy_views();
        let spec = FitSpec::with_rank(2).per_view_dim(3).center(true);
        #[allow(deprecated)]
        let shim = Pipeline::with_pca(Box::new(PcaEstimator));
        let built = Pipeline::builder()
            .standardize()
            .pca()
            .build(Box::new(PcaEstimator));
        let a = shim.fit(&views, &spec).unwrap().transform(&views).unwrap();
        let b = built.fit(&views, &spec).unwrap().transform(&views).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn standardization_is_replayed_on_new_instances() {
        let views = toy_views();
        #[allow(deprecated)]
        let pipeline = Pipeline::new(Box::new(PcaEstimator));
        let spec = FitSpec::with_rank(2).center(true).scale(true);
        let model = pipeline.fit(&views, &spec).unwrap();
        // Transforming the training views must agree with per-view transforms.
        let z = model.transform(&views).unwrap();
        let z0 = model.transform_view(0, &views[0]).unwrap();
        for i in 0..z.rows() {
            for j in 0..z0.cols() {
                assert!((z[(i, j)] - z0[(i, j)]).abs() < 1e-12);
            }
        }
        // Wrong view count is rejected.
        assert!(model.transform(&views[..1]).is_err());
    }

    #[test]
    fn whitening_stage_composes_and_round_trips() {
        let views = toy_views();
        let pipeline = Pipeline::builder()
            .standardize()
            .whiten_from_spec()
            .build(Box::new(PcaEstimator));
        let spec = FitSpec::with_rank(2)
            .center(true)
            .per_view_dim(3)
            .whiten(WhitenSpec::randomized());
        let model = pipeline.fit(&views, &spec).unwrap();
        let z = model.transform(&views).unwrap();

        // Save → load → transform is bit-identical.
        let reload = Pipeline::builder()
            .standardize()
            .whiten_from_spec()
            .build(Box::new(PcaEstimator));
        let reloaded = reload.load_state(&model.save_state().unwrap()).unwrap();
        assert_eq!(z, reloaded.transform(&views).unwrap());

        // transform_view_cols over split blocks matches the stitched transform.
        let (left, right) = (&views[0], &views[0]);
        let cols = ColsView::from_matrices([left, right]).unwrap();
        let stitched = left.hstack(right).unwrap();
        assert_eq!(
            model.transform_view_cols(0, &cols).unwrap(),
            model.transform_view(0, &stitched).unwrap()
        );
    }

    #[test]
    fn inert_stages_keep_the_inner_projection() {
        let views = toy_views();
        let pipeline = Pipeline::builder()
            .standardize()
            .whiten_from_spec()
            .build(Box::new(PcaEstimator));
        // Nothing active: no centering, no scaling, no whitening.
        let spec = FitSpec::with_rank(2);
        let model = pipeline.fit(&views, &spec).unwrap();
        // The stage-less model delegates straight to the inner model.
        let direct = PcaEstimator.fit(&views, &spec).unwrap();
        assert_eq!(
            model.view_projection(0).is_some(),
            direct.view_projection(0).is_some()
        );
        let state = model.save_state().unwrap();
        assert_eq!(state.index("stages/len").unwrap(), 0);
    }
}
