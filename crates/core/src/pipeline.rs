//! [`Pipeline`]: center/scale → per-view PCA pre-reduction → inner estimator.
//!
//! The paper's DSE and SSMVD runs reduce every view to 100 principal components
//! before learning the consensus; cca_zoo-style workflows standardize features
//! first. Both preambles used to be hand-rolled inside the individual methods —
//! the pipeline factors them into one reusable combinator that wraps *any*
//! [`MultiViewEstimator`] and replays the training-time preprocessing on held-out
//! instances at transform time.

use crate::estimators::{load_pca, save_pca};
use crate::model::check_same_instances;
use crate::preprocess::Standardizer;
use crate::{
    CombineRule, CoreError, FitSpec, InputKind, MemoryModel, ModelState, MultiViewEstimator,
    MultiViewModel, Output, Result,
};
use baselines::Pca;
use linalg::Matrix;

/// An estimator combinator applying per-view preprocessing before an inner estimator.
///
/// Preprocessing has two optional stages, both driven by the [`FitSpec`]:
///
/// 1. **Standardization** — when `spec.center` / `spec.scale` are set, each feature is
///    centered and/or scaled with statistics learned at fit time.
/// 2. **PCA pre-reduction** — when built with [`Pipeline::with_pca`], each view is
///    reduced to at most `spec.effective_per_view_dim()` principal components.
///
/// The pipeline reports the inner estimator's name, so registering
/// `Pipeline::with_pca(Box::new(DseConsensus))` under `"DSE"` is transparent to
/// callers.
pub struct Pipeline {
    inner: Box<dyn MultiViewEstimator>,
    pre_reduce: bool,
}

impl Pipeline {
    /// Wrap an estimator with standardization-only preprocessing (active when the
    /// spec's `center`/`scale` switches are set).
    pub fn new(inner: Box<dyn MultiViewEstimator>) -> Self {
        Self {
            inner,
            pre_reduce: false,
        }
    }

    /// Wrap an estimator with standardization plus per-view PCA pre-reduction to
    /// `spec.effective_per_view_dim()` components.
    pub fn with_pca(inner: Box<dyn MultiViewEstimator>) -> Self {
        Self {
            inner,
            pre_reduce: true,
        }
    }
}

impl MultiViewEstimator for Pipeline {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_kind(&self) -> InputKind {
        self.inner.input_kind()
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let mut memory = MemoryModel::new();

        let standardizers: Option<Vec<Standardizer>> = if spec.center || spec.scale {
            Some(
                views
                    .iter()
                    .map(|v| Standardizer::fit(v, spec.center, spec.scale))
                    .collect(),
            )
        } else {
            None
        };
        // Borrow the inputs unless standardization produced new matrices — a plain
        // PCA pipeline must not deep-copy every raw view just to read it.
        let standardized: Option<Vec<Matrix>> = match &standardizers {
            Some(scalers) => Some(
                views
                    .iter()
                    .zip(scalers.iter())
                    .map(|(v, s)| s.apply(v))
                    .collect::<Result<_>>()?,
            ),
            None => None,
        };
        let inputs: &[Matrix] = standardized.as_deref().unwrap_or(views);

        let (pcas, reduced) = if self.pre_reduce {
            let width = spec.effective_per_view_dim();
            if width == 0 {
                return Err(CoreError::InvalidInput(
                    "per-view dimension must be positive".into(),
                ));
            }
            let mut pcas = Vec::with_capacity(views.len());
            let mut reduced = Vec::with_capacity(views.len());
            for (p, v) in inputs.iter().enumerate() {
                let k = width.min(v.rows()).min(n.max(1));
                let pca = Pca::fit(v, k)?;
                let scores = pca.transform(v)?; // N × k
                memory.add_matrix(format!("PCA view {p}"), n, k);
                reduced.push(scores.transpose()); // back to the k × N view layout
                pcas.push(pca);
            }
            (Some(pcas), Some(reduced))
        } else {
            (None, None)
        };

        let inner = self.inner.fit(reduced.as_deref().unwrap_or(inputs), spec)?;
        memory.merge(inner.memory());
        Ok(Box::new(PipelineModel {
            standardizers,
            pcas,
            inner,
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let standardizers = if state.boolean("has_standardizers")? {
            let len = state.index("standardizers/len")?;
            let mut scalers = Vec::with_capacity(len);
            for i in 0..len {
                scalers.push(Standardizer::from_parts(
                    state.vector(&format!("standardizers/{i}/means"))?.to_vec(),
                    state
                        .vector(&format!("standardizers/{i}/inverse_stds"))?
                        .to_vec(),
                )?);
            }
            Some(scalers)
        } else {
            None
        };
        let pcas = if state.boolean("has_pcas")? {
            let len = state.index("pcas/len")?;
            Some(
                (0..len)
                    .map(|i| load_pca(state, &format!("pcas/{i}")))
                    .collect::<Result<Vec<_>>>()?,
            )
        } else {
            None
        };
        let inner_name = state.text("inner/name")?;
        if inner_name != self.inner.name() {
            return Err(CoreError::Persist(format!(
                "pipeline inner model is {inner_name:?} but this pipeline wraps {:?}",
                self.inner.name()
            )));
        }
        let inner = self.inner.load_state(&state.nested("inner")?)?;
        Ok(Box::new(PipelineModel {
            standardizers,
            pcas,
            inner,
            memory: state.memory()?,
        }))
    }
}

struct PipelineModel {
    standardizers: Option<Vec<Standardizer>>,
    pcas: Option<Vec<Pca>>,
    inner: Box<dyn MultiViewModel>,
    memory: MemoryModel,
}

impl PipelineModel {
    fn preprocessed_views(&self) -> Option<usize> {
        self.standardizers
            .as_ref()
            .map(Vec::len)
            .or_else(|| self.pcas.as_ref().map(Vec::len))
    }

    fn reduce_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let mut out = view.clone();
        if let Some(scalers) = &self.standardizers {
            out = scalers
                .get(which)
                .ok_or_else(|| CoreError::InvalidInput(format!("view index {which} out of range")))?
                .apply(&out)?;
        }
        if let Some(pcas) = &self.pcas {
            let pca = pcas.get(which).ok_or_else(|| {
                CoreError::InvalidInput(format!("view index {which} out of range"))
            })?;
            out = pca.transform(&out)?.transpose();
        }
        Ok(out)
    }

    fn reduce(&self, views: &[Matrix]) -> Result<Vec<Matrix>> {
        if let Some(m) = self.preprocessed_views() {
            if views.len() != m {
                return Err(CoreError::InvalidInput(format!(
                    "expected {m} views, got {}",
                    views.len()
                )));
            }
        }
        views
            .iter()
            .enumerate()
            .map(|(p, v)| self.reduce_view(p, v))
            .collect()
    }
}

impl MultiViewModel for PipelineModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        self.inner.transform(&self.reduce(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        self.inner
            .transform_view(which, &self.reduce_view(which, view)?)
    }

    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        self.inner.outputs(&self.reduce(views)?)
    }

    fn output_labels(&self) -> Vec<String> {
        self.inner.output_labels()
    }

    fn combine(&self) -> CombineRule {
        self.inner.combine()
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.preprocessed_views()
            .unwrap_or_else(|| self.inner.num_views())
    }

    fn input_kind(&self) -> InputKind {
        self.inner.input_kind()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_bool("has_standardizers", self.standardizers.is_some());
        if let Some(scalers) = &self.standardizers {
            state.put_int("standardizers/len", scalers.len() as u64);
            for (i, s) in scalers.iter().enumerate() {
                state.put_vector(format!("standardizers/{i}/means"), s.means());
                state.put_vector(format!("standardizers/{i}/inverse_stds"), s.inverse_stds());
            }
        }
        state.put_bool("has_pcas", self.pcas.is_some());
        if let Some(pcas) = &self.pcas {
            state.put_int("pcas/len", pcas.len() as u64);
            for (i, pca) in pcas.iter().enumerate() {
                save_pca(&mut state, &format!("pcas/{i}"), pca);
            }
        }
        state.put_text("inner/name", self.inner.name());
        state.put_nested("inner", &self.inner.save_state()?);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::PcaEstimator;

    fn toy_views() -> Vec<Matrix> {
        let n = 24;
        let mut v1 = Matrix::zeros(6, n);
        let mut v2 = Matrix::zeros(5, n);
        for j in 0..n {
            let t = if j % 3 == 0 { 1.2 } else { -0.4 };
            for i in 0..6 {
                v1[(i, j)] = t * (i as f64 + 1.0) + 10.0;
            }
            for i in 0..5 {
                v2[(i, j)] = -t * (i as f64 + 0.5) + (j as f64) * 0.01;
            }
        }
        vec![v1, v2]
    }

    #[test]
    fn pca_pipeline_reduces_each_view() {
        let views = toy_views();
        let pipeline = Pipeline::with_pca(Box::new(PcaEstimator));
        let spec = FitSpec::with_rank(2).per_view_dim(3);
        let model = pipeline.fit(&views, &spec).unwrap();
        assert_eq!(model.name(), "PCA");
        let z = model.transform(&views).unwrap();
        assert_eq!(z.rows(), 24);
        assert_eq!(z.cols(), model.dim());
        // The pipeline accounted for the PCA stage plus the inner model.
        assert!(model
            .memory()
            .entries()
            .iter()
            .any(|(l, _)| l.contains("PCA view")));
    }

    #[test]
    fn standardization_is_replayed_on_new_instances() {
        let views = toy_views();
        let pipeline = Pipeline::new(Box::new(PcaEstimator));
        let spec = FitSpec::with_rank(2).center(true).scale(true);
        let model = pipeline.fit(&views, &spec).unwrap();
        // Transforming the training views must agree with per-view transforms.
        let z = model.transform(&views).unwrap();
        let z0 = model.transform_view(0, &views[0]).unwrap();
        for i in 0..z.rows() {
            for j in 0..z0.cols() {
                assert!((z[(i, j)] - z0[(i, j)]).abs() < 1e-12);
            }
        }
        // Wrong view count is rejected.
        assert!(model.transform(&views[..1]).is_err());
    }
}
