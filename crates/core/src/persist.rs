//! Versioned, self-describing binary persistence for fitted models.
//!
//! A fitted [`crate::MultiViewModel`] is the paper's end product — per-view factor
//! matrices, dual coefficients, means — and serving embeddings must not require
//! refitting. This module defines the on-disk format and the conversion surface every
//! model implements; the actual field lists live next to each model in
//! [`crate::estimators`].
//!
//! ## On-disk format (`MVTC`, version 2)
//!
//! All integers are little-endian; all floats are IEEE-754 `f64` bit patterns (so a
//! save → load round-trip reproduces `transform` output **bit-identically**).
//!
//! ```text
//! header:
//!   magic      4 bytes   b"MVTC"
//!   version    u32       format version (currently 2; version 1 still reads)
//!   method     u32 + n   display name of the method (registry key), UTF-8
//!   dim        u64       embedding width reported by the model
//!   num_views  u32       number of input views / kernels `transform` expects
//!   input_kind u8        0 = feature views, 1 = kernel blocks
//!   model_version u64    lineage: refit generation, 0 for a one-shot fit   (v2+)
//!   parent_crc u32       lineage: payload CRC of the model refit started
//!                        from, 0 for a one-shot fit                        (v2+)
//!   payload_len u64      byte length of the section payload that follows
//!   crc32      u32       CRC-32 (IEEE) of the payload bytes
//! payload:
//!   count      u32       number of sections
//!   section*:
//!     name     u32 + n   section name, UTF-8
//!     tag      u8        0 scalar, 1 int, 2 text, 3 vector, 4 matrix, 5 bytes
//!     body     …         tag-dependent (see [`Value`])
//! ```
//!
//! The header alone is enough for a model store to index a directory (method, shape,
//! checksum, refit lineage) without deserializing the payload. Unknown *section names*
//! are ignored by loaders (forward-compatible field additions); an unknown *version*
//! or a checksum mismatch is an error (incompatible layout / corruption). Version 1
//! files (written before streaming refits existed) read back with lineage
//! `model_version = 0`, `parent_crc = 0`.

use crate::{CoreError, InputKind, MemoryModel, Result};
use linalg::Matrix;
use std::io::{Read, Write};

/// File magic identifying a serialized multi-view model.
pub const MAGIC: [u8; 4] = *b"MVTC";

/// Current format version written by [`write_model`].
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this build still reads (version 1 lacks the lineage
/// fields; they default to zero).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Upper bound accepted for any length field while reading (guards corrupt or
/// malicious headers from driving huge allocations before the CRC check can run).
const MAX_LEN: u64 = 1 << 31;

/// One named, typed section of a serialized model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single `f64` (stored as its exact bit pattern).
    Scalar(f64),
    /// A single unsigned integer (counts, sizes, enum discriminants).
    Int(u64),
    /// A UTF-8 string.
    Text(String),
    /// A flat `f64` vector.
    Vector(Vec<f64>),
    /// A dense matrix (row-major `f64`).
    Matrix(Matrix),
    /// Raw bytes — used for nested model states (e.g. a pipeline's inner model).
    Bytes(Vec<u8>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Vector(_) => "vector",
            Value::Matrix(_) => "matrix",
            Value::Bytes(_) => "bytes",
        }
    }
}

/// The ordered, named sections a model converts itself to and from.
///
/// [`crate::MultiViewModel::save_state`] produces one; the matching
/// [`crate::MultiViewEstimator::load_state`] consumes one. Getters report missing
/// names and type mismatches as [`CoreError::Persist`] so a corrupted or
/// wrong-method file fails with a descriptive error instead of garbage numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelState {
    sections: Vec<(String, Value)>,
}

impl ModelState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Section names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Whether a section exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    fn put(&mut self, name: impl Into<String>, value: Value) {
        self.sections.push((name.into(), value));
    }

    fn get(&self, name: &str) -> Result<&Value> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| CoreError::Persist(format!("missing section {name:?}")))
    }

    fn expect<'a, T>(
        &'a self,
        name: &str,
        want: &'static str,
        f: impl FnOnce(&'a Value) -> Option<T>,
    ) -> Result<T> {
        let value = self.get(name)?;
        f(value).ok_or_else(|| {
            CoreError::Persist(format!(
                "section {name:?} holds a {}, expected a {want}",
                value.kind()
            ))
        })
    }

    /// Store a scalar.
    pub fn put_scalar(&mut self, name: impl Into<String>, v: f64) {
        self.put(name, Value::Scalar(v));
    }

    /// Store an integer.
    pub fn put_int(&mut self, name: impl Into<String>, v: u64) {
        self.put(name, Value::Int(v));
    }

    /// Store a boolean (as 0/1).
    pub fn put_bool(&mut self, name: impl Into<String>, v: bool) {
        self.put_int(name, u64::from(v));
    }

    /// Store a string.
    pub fn put_text(&mut self, name: impl Into<String>, v: impl Into<String>) {
        self.put(name, Value::Text(v.into()));
    }

    /// Store a flat `f64` vector.
    pub fn put_vector(&mut self, name: impl Into<String>, v: &[f64]) {
        self.put(name, Value::Vector(v.to_vec()));
    }

    /// Store a matrix.
    pub fn put_matrix(&mut self, name: impl Into<String>, m: &Matrix) {
        self.put(name, Value::Matrix(m.clone()));
    }

    /// Store raw bytes.
    pub fn put_bytes(&mut self, name: impl Into<String>, v: Vec<u8>) {
        self.put(name, Value::Bytes(v));
    }

    /// Store a list of matrices under `prefix/len` + `prefix/i`.
    pub fn put_matrices(&mut self, prefix: &str, ms: &[Matrix]) {
        self.put_int(format!("{prefix}/len"), ms.len() as u64);
        for (i, m) in ms.iter().enumerate() {
            self.put_matrix(format!("{prefix}/{i}"), m);
        }
    }

    /// Store a list of vectors under `prefix/len` + `prefix/i`.
    pub fn put_vectors(&mut self, prefix: &str, vs: &[Vec<f64>]) {
        self.put_int(format!("{prefix}/len"), vs.len() as u64);
        for (i, v) in vs.iter().enumerate() {
            self.put_vector(format!("{prefix}/{i}"), v);
        }
    }

    /// Store a nested state (e.g. a pipeline's inner model) as a byte section.
    pub fn put_nested(&mut self, name: impl Into<String>, state: &ModelState) {
        self.put_bytes(name, encode_sections(state));
    }

    /// Store a [`MemoryModel`] under the reserved `memory/…` names.
    pub fn put_memory(&mut self, memory: &MemoryModel) {
        self.put_int("memory/len", memory.entries().len() as u64);
        for (i, (label, bytes)) in memory.entries().iter().enumerate() {
            self.put_text(format!("memory/{i}/label"), label.clone());
            self.put_int(format!("memory/{i}/bytes"), *bytes as u64);
        }
    }

    /// Read a scalar.
    pub fn scalar(&self, name: &str) -> Result<f64> {
        self.expect(name, "scalar", |v| match v {
            Value::Scalar(x) => Some(*x),
            _ => None,
        })
    }

    /// Read an integer.
    pub fn int(&self, name: &str) -> Result<u64> {
        self.expect(name, "int", |v| match v {
            Value::Int(x) => Some(*x),
            _ => None,
        })
    }

    /// Read an integer as `usize`.
    pub fn index(&self, name: &str) -> Result<usize> {
        usize::try_from(self.int(name)?)
            .map_err(|_| CoreError::Persist(format!("section {name:?} does not fit in usize")))
    }

    /// Read a boolean (any non-zero integer is `true`).
    pub fn boolean(&self, name: &str) -> Result<bool> {
        Ok(self.int(name)? != 0)
    }

    /// Read a string.
    pub fn text(&self, name: &str) -> Result<&str> {
        self.expect(name, "text", |v| match v {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Read a vector.
    pub fn vector(&self, name: &str) -> Result<&[f64]> {
        self.expect(name, "vector", |v| match v {
            Value::Vector(x) => Some(x.as_slice()),
            _ => None,
        })
    }

    /// Read a matrix.
    pub fn matrix(&self, name: &str) -> Result<&Matrix> {
        self.expect(name, "matrix", |v| match v {
            Value::Matrix(m) => Some(m),
            _ => None,
        })
    }

    /// Read raw bytes.
    pub fn bytes(&self, name: &str) -> Result<&[u8]> {
        self.expect(name, "bytes", |v| match v {
            Value::Bytes(b) => Some(b.as_slice()),
            _ => None,
        })
    }

    /// Read a matrix list written by [`ModelState::put_matrices`].
    pub fn matrices(&self, prefix: &str) -> Result<Vec<Matrix>> {
        let len = self.index(&format!("{prefix}/len"))?;
        (0..len)
            .map(|i| self.matrix(&format!("{prefix}/{i}")).cloned())
            .collect()
    }

    /// Read a vector list written by [`ModelState::put_vectors`].
    pub fn vectors(&self, prefix: &str) -> Result<Vec<Vec<f64>>> {
        let len = self.index(&format!("{prefix}/len"))?;
        (0..len)
            .map(|i| self.vector(&format!("{prefix}/{i}")).map(<[f64]>::to_vec))
            .collect()
    }

    /// Read a nested state written by [`ModelState::put_nested`].
    pub fn nested(&self, name: &str) -> Result<ModelState> {
        decode_sections(self.bytes(name)?)
    }

    /// Read a [`MemoryModel`] written by [`ModelState::put_memory`].
    pub fn memory(&self) -> Result<MemoryModel> {
        let len = self.index("memory/len")?;
        let mut memory = MemoryModel::new();
        for i in 0..len {
            let label = self.text(&format!("memory/{i}/label"))?.to_string();
            let bytes = self.index(&format!("memory/{i}/bytes"))?;
            memory.add_bytes(label, bytes);
        }
        Ok(memory)
    }
}

/// Everything the header records about a serialized model — enough for a model store
/// to index a directory without touching the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Method display name (the registry key needed to load the model).
    pub method: String,
    /// Embedding width ([`crate::MultiViewModel::dim`]).
    pub dim: usize,
    /// Number of input views / kernel blocks `transform` expects.
    pub num_views: usize,
    /// Whether `transform` expects feature views or kernel blocks.
    pub input_kind: InputKind,
    /// Refit generation: 0 for a one-shot fit, incremented on every streaming refit.
    pub model_version: u64,
    /// Payload CRC of the model this refit warm-started from (0 for a one-shot fit).
    pub parent_crc: u32,
    /// Byte length of the section payload.
    pub payload_len: u64,
    /// CRC-32 (IEEE) of the payload bytes.
    pub checksum: u32,
}

// ---------------------------------------------------------------------------
// Low-level encoding
// ---------------------------------------------------------------------------

fn io_err(context: &str, e: std::io::Error) -> CoreError {
    CoreError::Persist(format!("{context}: {e}"))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_f64_slice(out: &mut Vec<u8>, xs: &[f64]) {
    out.reserve(xs.len() * 8);
    for &x in xs {
        push_f64(out, x);
    }
}

/// Encode just the section list (no header) — the nested-state representation.
fn encode_sections(state: &ModelState) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, state.sections.len() as u32);
    for (name, value) in &state.sections {
        push_str(&mut out, name);
        match value {
            Value::Scalar(x) => {
                out.push(0);
                push_f64(&mut out, *x);
            }
            Value::Int(x) => {
                out.push(1);
                push_u64(&mut out, *x);
            }
            Value::Text(s) => {
                out.push(2);
                push_str(&mut out, s);
            }
            Value::Vector(xs) => {
                out.push(3);
                push_u64(&mut out, xs.len() as u64);
                push_f64_slice(&mut out, xs);
            }
            Value::Matrix(m) => {
                out.push(4);
                push_u64(&mut out, m.rows() as u64);
                push_u64(&mut out, m.cols() as u64);
                push_f64_slice(&mut out, m.as_slice());
            }
            Value::Bytes(b) => {
                out.push(5);
                push_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Byte-slice reader with bounds-checked primitives and descriptive errors.
struct SliceReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CoreError::Persist(format!(
                "truncated payload while reading {what} (need {n} bytes at offset {}, have {})",
                self.pos,
                self.data.len() - self.pos
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn len(&mut self, what: &str) -> Result<usize> {
        let n = self.u64(what)?;
        if n > MAX_LEN {
            return Err(CoreError::Persist(format!(
                "{what} length {n} exceeds the supported maximum"
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CoreError::Persist(format!("{what} is not valid UTF-8")))
    }

    fn f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| CoreError::Persist(format!("{what} length overflows")))?,
            what,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }
}

/// Decode a section list written by [`encode_sections`].
fn decode_sections(payload: &[u8]) -> Result<ModelState> {
    let mut r = SliceReader::new(payload);
    let count = r.u32("section count")? as usize;
    let mut state = ModelState::new();
    for _ in 0..count {
        let name = r.string("section name")?;
        let tag = r.u8("section tag")?;
        let value = match tag {
            0 => Value::Scalar(r.f64("scalar body")?),
            1 => Value::Int(r.u64("int body")?),
            2 => Value::Text(r.string("text body")?),
            3 => {
                let n = r.len("vector length")?;
                Value::Vector(r.f64_vec(n, "vector body")?)
            }
            4 => {
                let rows = r.len("matrix rows")?;
                let cols = r.len("matrix cols")?;
                let n = rows
                    .checked_mul(cols)
                    .ok_or_else(|| CoreError::Persist("matrix shape overflows".into()))?;
                let data = r.f64_vec(n, "matrix body")?;
                Value::Matrix(
                    Matrix::from_vec(rows, cols, data)
                        .map_err(|e| CoreError::Persist(format!("bad matrix section: {e}")))?,
                )
            }
            5 => {
                let n = r.len("bytes length")?;
                Value::Bytes(r.take(n, "bytes body")?.to_vec())
            }
            other => {
                return Err(CoreError::Persist(format!(
                    "unknown section tag {other} for section {name:?}"
                )))
            }
        };
        state.put(name, value);
    }
    if r.pos != payload.len() {
        return Err(CoreError::Persist(format!(
            "payload has {} trailing bytes after the last section",
            payload.len() - r.pos
        )));
    }
    Ok(state)
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Write a complete model file: header + checksummed section payload. Lineage is
/// zeroed (`model_version = 0`, `parent_crc = 0`) — the one-shot-fit convention; a
/// streaming refit uses [`write_model_versioned`] instead.
pub fn write_model(
    w: &mut dyn Write,
    method: &str,
    dim: usize,
    num_views: usize,
    input_kind: InputKind,
    state: &ModelState,
) -> Result<()> {
    write_model_versioned(w, method, dim, num_views, input_kind, 0, 0, state)
}

/// Write a complete model file with explicit refit lineage: `model_version` is the
/// refit generation and `parent_crc` the payload checksum of the model the refit
/// warm-started from.
#[allow(clippy::too_many_arguments)]
pub fn write_model_versioned(
    w: &mut dyn Write,
    method: &str,
    dim: usize,
    num_views: usize,
    input_kind: InputKind,
    model_version: u64,
    parent_crc: u32,
    state: &ModelState,
) -> Result<()> {
    let payload = encode_sections(state);
    let mut header = Vec::with_capacity(44 + method.len());
    header.extend_from_slice(&MAGIC);
    push_u32(&mut header, FORMAT_VERSION);
    push_str(&mut header, method);
    push_u64(&mut header, dim as u64);
    push_u32(&mut header, num_views as u32);
    header.push(match input_kind {
        InputKind::Views => 0,
        InputKind::Kernels => 1,
    });
    push_u64(&mut header, model_version);
    push_u32(&mut header, parent_crc);
    push_u64(&mut header, payload.len() as u64);
    push_u32(&mut header, crc32(&payload));
    w.write_all(&header)
        .and_then(|()| w.write_all(&payload))
        .map_err(|e| io_err("writing model", e))
}

fn read_exact(r: &mut dyn Read, n: usize, what: &str) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CoreError::Persist(format!("truncated model file while reading {what}"))
        } else {
            io_err(&format!("reading {what}"), e)
        }
    })?;
    Ok(buf)
}

/// Read and validate the header, leaving the reader positioned at the payload.
pub fn read_meta(r: &mut dyn Read) -> Result<ModelMeta> {
    let magic = read_exact(r, 4, "magic")?;
    if magic != MAGIC {
        return Err(CoreError::Persist(format!(
            "bad magic {magic:?}: not a serialized multi-view model"
        )));
    }
    let version_bytes = read_exact(r, 4, "format version")?;
    let version = u32::from_le_bytes(version_bytes.try_into().expect("4 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(CoreError::Persist(format!(
            "unsupported format version {version} (this build reads versions \
             {MIN_FORMAT_VERSION} through {FORMAT_VERSION})"
        )));
    }
    let name_len = u32::from_le_bytes(
        read_exact(r, 4, "method name length")?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    if name_len as u64 > MAX_LEN {
        return Err(CoreError::Persist("method name length is absurd".into()));
    }
    let method = String::from_utf8(read_exact(r, name_len, "method name")?)
        .map_err(|_| CoreError::Persist("method name is not valid UTF-8".into()))?;
    let dim = u64::from_le_bytes(read_exact(r, 8, "dim")?.try_into().expect("8 bytes"));
    let num_views = u32::from_le_bytes(read_exact(r, 4, "num_views")?.try_into().expect("4 bytes"));
    let kind_byte = read_exact(r, 1, "input kind")?[0];
    let input_kind = match kind_byte {
        0 => InputKind::Views,
        1 => InputKind::Kernels,
        other => {
            return Err(CoreError::Persist(format!(
                "unknown input-kind byte {other}"
            )))
        }
    };
    let (model_version, parent_crc) = if version >= 2 {
        let mv = u64::from_le_bytes(
            read_exact(r, 8, "model version")?
                .try_into()
                .expect("8 bytes"),
        );
        let pc = u32::from_le_bytes(
            read_exact(r, 4, "parent checksum")?
                .try_into()
                .expect("4 bytes"),
        );
        (mv, pc)
    } else {
        (0, 0)
    };
    let payload_len = u64::from_le_bytes(
        read_exact(r, 8, "payload length")?
            .try_into()
            .expect("8 bytes"),
    );
    if payload_len > MAX_LEN {
        return Err(CoreError::Persist(format!(
            "payload length {payload_len} exceeds the supported maximum"
        )));
    }
    let checksum = u32::from_le_bytes(read_exact(r, 4, "checksum")?.try_into().expect("4 bytes"));
    Ok(ModelMeta {
        method,
        dim: dim as usize,
        num_views: num_views as usize,
        input_kind,
        model_version,
        parent_crc,
        payload_len,
        checksum,
    })
}

/// Read a complete model file into its header metadata and section state, verifying
/// the payload checksum.
pub fn read_model(r: &mut dyn Read) -> Result<(ModelMeta, ModelState)> {
    let meta = read_meta(r)?;
    let payload = read_exact(r, meta.payload_len as usize, "payload")?;
    let actual = crc32(&payload);
    if actual != meta.checksum {
        return Err(CoreError::Persist(format!(
            "payload checksum mismatch (header says {:#010x}, payload is {actual:#010x}): \
             the file is corrupt",
            meta.checksum
        )));
    }
    let state = decode_sections(&payload)?;
    Ok((meta, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ModelState {
        let mut s = ModelState::new();
        s.put_scalar("eps", 1e-2);
        s.put_int("rank", 7);
        s.put_bool("whitened", true);
        s.put_text("note", "héllo");
        s.put_vector("mean", &[1.0, -2.5, f64::MIN_POSITIVE]);
        s.put_matrix(
            "proj",
            &Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -0.0]]).unwrap(),
        );
        s.put_bytes("blob", vec![0, 255, 7]);
        s
    }

    #[test]
    fn state_roundtrips_through_bytes() {
        let s = sample_state();
        let decoded = decode_sections(&encode_sections(&s)).unwrap();
        assert_eq!(s, decoded);
        assert_eq!(decoded.scalar("eps").unwrap(), 1e-2);
        assert_eq!(decoded.index("rank").unwrap(), 7);
        assert!(decoded.boolean("whitened").unwrap());
        assert_eq!(decoded.text("note").unwrap(), "héllo");
        assert_eq!(decoded.vector("mean").unwrap()[2], f64::MIN_POSITIVE);
        assert_eq!(decoded.matrix("proj").unwrap()[(1, 0)], 3.0);
        assert_eq!(decoded.bytes("blob").unwrap(), &[0, 255, 7]);
    }

    #[test]
    fn getters_report_missing_and_mistyped_sections() {
        let s = sample_state();
        assert!(matches!(s.scalar("nope"), Err(CoreError::Persist(_))));
        let err = s.matrix("mean").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("vector") && msg.contains("matrix"), "{msg}");
    }

    #[test]
    fn lists_nested_and_memory_roundtrip() {
        let mut s = ModelState::new();
        let ms = vec![Matrix::identity(2), Matrix::zeros(1, 3)];
        s.put_matrices("proj", &ms);
        s.put_vectors("means", &[vec![1.0], vec![2.0, 3.0]]);
        let mut inner = ModelState::new();
        inner.put_int("x", 9);
        s.put_nested("inner", &inner);
        let mut mm = MemoryModel::new();
        mm.add_matrix("cov", 4, 4);
        mm.add_bytes("misc", 10);
        s.put_memory(&mm);

        let d = decode_sections(&encode_sections(&s)).unwrap();
        assert_eq!(d.matrices("proj").unwrap(), ms);
        assert_eq!(d.vectors("means").unwrap(), vec![vec![1.0], vec![2.0, 3.0]]);
        assert_eq!(d.nested("inner").unwrap().int("x").unwrap(), 9);
        assert_eq!(d.memory().unwrap(), mm);
    }

    #[test]
    fn model_file_roundtrips_with_meta() {
        let s = sample_state();
        let mut buf = Vec::new();
        write_model(&mut buf, "TCCA", 6, 3, InputKind::Views, &s).unwrap();
        let (meta, state) = read_model(&mut buf.as_slice()).unwrap();
        assert_eq!(meta.method, "TCCA");
        assert_eq!(meta.dim, 6);
        assert_eq!(meta.num_views, 3);
        assert_eq!(meta.input_kind, InputKind::Views);
        assert_eq!(state, s);
        // Header-only read agrees.
        let meta2 = read_meta(&mut buf.as_slice()).unwrap();
        assert_eq!(meta2, meta);
    }

    #[test]
    fn corrupt_header_and_payload_are_rejected() {
        let s = sample_state();
        let mut buf = Vec::new();
        write_model(&mut buf, "KTCCA", 4, 2, InputKind::Kernels, &s).unwrap();

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_model(&mut bad.as_slice())
            .unwrap_err()
            .to_string()
            .contains("magic"));

        // Future version.
        let mut bad = buf.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(read_model(&mut bad.as_slice())
            .unwrap_err()
            .to_string()
            .contains("version 99"));

        // Truncation.
        let bad = &buf[..buf.len() - 3];
        assert!(read_model(&mut &bad[..])
            .unwrap_err()
            .to_string()
            .contains("truncated"));

        // Payload bit flip → checksum mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(read_model(&mut bad.as_slice())
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }

    #[test]
    fn lineage_roundtrips_and_defaults_to_zero() {
        let s = sample_state();
        let mut buf = Vec::new();
        write_model_versioned(&mut buf, "TCCA", 6, 3, InputKind::Views, 4, 0xDEAD_BEEF, &s)
            .unwrap();
        let (meta, state) = read_model(&mut buf.as_slice()).unwrap();
        assert_eq!(meta.model_version, 4);
        assert_eq!(meta.parent_crc, 0xDEAD_BEEF);
        assert_eq!(state, s);

        // write_model is the one-shot-fit convention: lineage zeroed.
        let mut buf = Vec::new();
        write_model(&mut buf, "TCCA", 6, 3, InputKind::Views, &s).unwrap();
        let meta = read_meta(&mut buf.as_slice()).unwrap();
        assert_eq!(meta.model_version, 0);
        assert_eq!(meta.parent_crc, 0);
    }

    #[test]
    fn version_1_files_still_read_with_zero_lineage() {
        // Hand-assemble a version-1 header (no lineage fields) around a payload.
        let s = sample_state();
        let payload = encode_sections(&s);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        push_u32(&mut buf, 1);
        push_str(&mut buf, "TCCA");
        push_u64(&mut buf, 6);
        push_u32(&mut buf, 3);
        buf.push(0);
        push_u64(&mut buf, payload.len() as u64);
        push_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);

        let (meta, state) = read_model(&mut buf.as_slice()).unwrap();
        assert_eq!(meta.method, "TCCA");
        assert_eq!(meta.model_version, 0);
        assert_eq!(meta.parent_crc, 0);
        assert_eq!(state, s);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
