//! Trait surface for streaming (incremental) fitting.
//!
//! A streaming fit splits the paper's one-shot `fit(views)` into three phases that
//! commute with chunking:
//!
//! 1. **accumulate** — [`SufficientStats::partial_fit`] folds a chunk of instances
//!    (one `d_p × n_chunk` matrix per view) into a fixed-size summary,
//! 2. **merge** — [`SufficientStats::merge`] combines summaries built on disjoint
//!    chunks (associative and order-insensitive, so chunks can be processed on
//!    different threads or machines and combined in any order),
//! 3. **finalize** — [`SufficientStats::finalize`] solves the method's closed-form
//!    problem from the summary alone.
//!
//! The contract for the linear methods is **bit-identity**: finalize over any
//! chunking of the samples must produce a model whose `transform` output is
//! bit-for-bit identical to the one-shot fit on the concatenated data. Iterative
//! methods (TCCA's CP decomposition) are instead held to a convergence tolerance
//! and support warm starting through [`StreamingEstimator::refit`].
//!
//! The trait objects live here in `mvcore` so the serving layer can drive a
//! background trainer without depending on the per-method implementations; the
//! implementations and their registry live in the `stream` crate.

use crate::{FitSpec, MultiViewModel, Result};
use linalg::Matrix;
use std::any::Any;

/// A mergeable, fixed-size summary of the samples seen so far, specific to one
/// estimator family.
pub trait SufficientStats: Send {
    /// Registry name of the method these stats finalize into (e.g. `"TCCA"`).
    fn method(&self) -> &str;

    /// Number of instances accumulated so far.
    fn count(&self) -> u64;

    /// Fold one chunk of instances into the summary. `views[p]` is `d_p × n_chunk`;
    /// every view must carry the same number of columns.
    fn partial_fit(&mut self, views: &[Matrix]) -> Result<()>;

    /// Combine with stats accumulated on a disjoint set of chunks. Errors if
    /// `other` is for a different method or shape. Merging is associative and (for
    /// the linear families) exact: any merge tree over the same chunks yields
    /// bit-identical stats.
    fn merge(&mut self, other: &dyn SufficientStats) -> Result<()>;

    /// Solve the method from the accumulated summary.
    fn finalize(&self) -> Result<Box<dyn MultiViewModel>>;

    /// Downcasting hook used by [`SufficientStats::merge`] implementations.
    fn as_any(&self) -> &dyn Any;
}

/// An estimator family that can fit from [`SufficientStats`] and warm-start from a
/// previously fitted model.
pub trait StreamingEstimator {
    /// Registry name (matches [`crate::MultiViewEstimator::name`]).
    fn name(&self) -> &str;

    /// Fresh, empty stats for views of the given per-view feature dimensions.
    fn new_stats(&self, dims: &[usize], spec: &FitSpec) -> Result<Box<dyn SufficientStats>>;

    /// Refit from accumulated stats, warm-starting from `prev` where the method
    /// supports it (TCCA seeds its CP-ALS sweeps from the previous factors; the
    /// closed-form linear methods ignore `prev`). Returns the new model and the
    /// number of iterative sweeps it took (0 for closed-form methods).
    fn refit(
        &self,
        prev: Option<&dyn MultiViewModel>,
        stats: &dyn SufficientStats,
    ) -> Result<(Box<dyn MultiViewModel>, usize)>;
}
