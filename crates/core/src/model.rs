//! The object-safe estimator / model traits every method implements.
//!
//! [`MultiViewEstimator`] is the *unfitted* side: a named, stateless factory that
//! turns `m` input matrices plus a [`FitSpec`] into a fitted [`MultiViewModel`].
//! Both traits are object safe, so the [`crate::EstimatorRegistry`] can hand out
//! `Box<dyn MultiViewEstimator>` and callers can sweep every method through one code
//! path — the prerequisite for serving, persistence and the experiment harness.

use crate::persist::{self, ModelState};
use crate::{CoreError, FitSpec, MemoryModel, Result};
use linalg::{ColsView, Matrix};
use std::io::Write;

/// What an estimator expects as its input matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Per-view feature matrices, `d_p × N` with instances as columns.
    Views,
    /// Per-view centered Gram matrices, `N × N`.
    Kernels,
}

/// How multiple candidate representations are turned into one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineRule {
    /// Evaluate each candidate on validation data and keep the best (the paper's
    /// "BST" variants, and the BSF / BSK single-view baselines).
    SelectBest,
    /// Combine all candidates — averaged decision scores or majority vote (the
    /// paper's "AVG" variants).
    Average,
}

/// One candidate representation of all instances produced by a fitted model.
#[derive(Debug, Clone)]
pub enum Output {
    /// An `N × dim` embedding; learners use it directly (RLS) or via Euclidean
    /// distances (kNN).
    Embedding(Matrix),
    /// An `N × N` precomputed squared-distance matrix (kernel baselines evaluated by
    /// kNN without an explicit embedding).
    Distances(Matrix),
}

impl Output {
    /// Number of instances (rows) the output covers.
    pub fn len(&self) -> usize {
        match self {
            Output::Embedding(z) => z.rows(),
            Output::Distances(d) => d.rows(),
        }
    }

    /// True when the output covers no instances.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An unfitted, named multi-view dimension-reduction method.
pub trait MultiViewEstimator: Send + Sync {
    /// Display name, matching the paper's tables (e.g. `"TCCA"`, `"CCA (AVG)"`).
    fn name(&self) -> &str;

    /// Whether [`MultiViewEstimator::fit`] expects feature views or Gram matrices.
    fn input_kind(&self) -> InputKind {
        InputKind::Views
    }

    /// Fit the method on the input matrices (one per view, sharing the instance
    /// axis), returning a fitted model.
    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>>;

    /// Reconstruct a fitted model from the named sections written by
    /// [`MultiViewModel::save_state`]. The inverse of persistence: for every model
    /// this estimator can produce, `load_state(model.save_state()?)` must yield a
    /// model whose `transform` output is bit-identical to the original's.
    ///
    /// Callers normally go through [`crate::EstimatorRegistry::load_model`], which
    /// reads the file header and dispatches here by method name.
    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>>;
}

/// The borrowed pieces of one view's linear projection `(X − shift·1ᵀ)ᵀ · W`:
/// what [`MultiViewModel::view_projection`] exposes so the serving layer can
/// derive alternate-precision copies of the factor matrices.
pub struct ViewProjection<'a> {
    /// The `d × r` projection weights for this view.
    pub weights: &'a Matrix,
    /// Optional per-feature shift (length `d`), subtracted before projecting.
    pub shift: Option<&'a [f64]>,
}

/// A fitted multi-view model that projects instances into the learned subspace.
pub trait MultiViewModel: Send + Sync {
    /// Display name of the method that produced the model.
    fn name(&self) -> &str;

    /// Width of the embedding produced by [`MultiViewModel::transform`]
    /// (0 for models that only produce distance matrices).
    fn dim(&self) -> usize;

    /// Number of input matrices (views or kernel blocks) `transform` expects.
    fn num_views(&self) -> usize;

    /// Whether `transform` expects feature views (`d_p × M`, instances as columns)
    /// or kernel blocks (`M × N`, instances as rows). Mirrors
    /// [`MultiViewEstimator::input_kind`]; the serving layer uses it to decide which
    /// axis to batch along.
    fn input_kind(&self) -> InputKind {
        InputKind::Views
    }

    /// Project every view and produce the method's `N × dim` representation.
    fn transform(&self, views: &[Matrix]) -> Result<Matrix>;

    /// Project a single view (where the method defines a per-view projection).
    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix>;

    /// Project a single view given as the horizontal concatenation of borrowed
    /// column blocks — the shape of a coalesced serving batch. The default
    /// materializes the concatenation (which counts against
    /// [`linalg::input_stitches`]) and delegates to
    /// [`MultiViewModel::transform_view`]; projection-based models override it to
    /// feed the blocked GEMM straight from the borrowed blocks with **zero input
    /// copies**. Every implementation must be bit-identical to the stitched path.
    fn transform_view_cols(&self, which: usize, cols: &ColsView<'_>) -> Result<Matrix> {
        self.transform_view(which, &cols.to_matrix())
    }

    /// Borrow the raw linear projection for one view, when the model's
    /// `transform_view` is exactly `(X − shift·1ᵀ)ᵀ · W` — a `d × r` weight
    /// matrix plus an optional per-feature shift (mean-centering). The serving
    /// layer uses this to build cached reduced-precision shadows of the factor
    /// matrices without knowing each estimator's internals; models whose
    /// per-view transform is not a plain shifted projection (kernel methods,
    /// multi-candidate baselines) keep the `None` default and serve f64 only.
    fn view_projection(&self, _which: usize) -> Option<ViewProjection<'_>> {
        None
    }

    /// All candidate representations of the given instances. Most methods produce one
    /// embedding; the pairwise and single-view baselines produce several candidates
    /// combined under [`MultiViewModel::combine`].
    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        Ok(vec![Output::Embedding(self.transform(views)?)])
    }

    /// Human-readable names for the candidates returned by
    /// [`MultiViewModel::outputs`], parallel to that vector. The serving layer
    /// attaches these labels to multi-candidate replies so clients can tell the
    /// per-view / per-pair candidates apart. The default single-embedding case is
    /// labelled `"embedding"`; implementations whose candidate count depends on the
    /// fitted state override this (per-view baselines, pairwise CCA/KCCA). A
    /// mismatch in length falls back to positional `candidate{i}` labels downstream.
    fn output_labels(&self) -> Vec<String> {
        vec!["embedding".to_string()]
    }

    /// How this model's candidates are combined downstream.
    fn combine(&self) -> CombineRule {
        CombineRule::SelectBest
    }

    /// The allocation model recorded while fitting (the paper's memory-cost curves).
    fn memory(&self) -> &MemoryModel;

    /// Convert the fitted state into named sections for persistence. Together with
    /// the matching [`MultiViewEstimator::load_state`], this must round-trip
    /// `transform` output bit-identically (the codec stores exact `f64` bit
    /// patterns, so faithfully listing the fields is sufficient).
    fn save_state(&self) -> Result<ModelState>;

    /// Serialize the model into the versioned `MVTC` binary format (see
    /// [`crate::persist`]). Load it back with
    /// [`crate::EstimatorRegistry::load_model`].
    fn save(&self, w: &mut dyn Write) -> Result<()> {
        let state = self.save_state()?;
        persist::write_model(
            w,
            self.name(),
            self.dim(),
            self.num_views(),
            self.input_kind(),
            &state,
        )
    }
}

/// Shared validation for kernel estimators: same instance count and every Gram
/// matrix square. Returns the instance count.
pub fn check_square_kernels(kernels: &[Matrix]) -> Result<usize> {
    let n = check_same_instances(kernels)?;
    for (p, k) in kernels.iter().enumerate() {
        if !k.is_square() {
            return Err(CoreError::InvalidInput(format!(
                "kernel {p} must be square, got {}x{}",
                k.rows(),
                k.cols()
            )));
        }
    }
    Ok(n)
}

/// Shared validation: all inputs present, same instance count, no empty views.
pub fn check_same_instances(views: &[Matrix]) -> Result<usize> {
    if views.is_empty() {
        return Err(CoreError::InvalidInput("need at least one view".into()));
    }
    let n = views[0].cols();
    for (p, v) in views.iter().enumerate() {
        if v.cols() != n {
            return Err(CoreError::InvalidInput(format!(
                "view {p} has {} instances, expected {n}",
                v.cols()
            )));
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_len_covers_both_variants() {
        let z = Output::Embedding(Matrix::zeros(4, 2));
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
        let d = Output::Distances(Matrix::zeros(3, 3));
        assert_eq!(d.len(), 3);
        let empty = Output::Embedding(Matrix::zeros(0, 2));
        assert!(empty.is_empty());
    }

    #[test]
    fn instance_check_rejects_mismatches() {
        assert!(check_same_instances(&[]).is_err());
        let ok = check_same_instances(&[Matrix::zeros(2, 5), Matrix::zeros(3, 5)]);
        assert_eq!(ok.unwrap(), 5);
        let bad = check_same_instances(&[Matrix::zeros(2, 5), Matrix::zeros(3, 4)]);
        assert!(bad.is_err());
    }
}
