//! Per-view feature standardization (the cca_zoo-style center/scale preprocessing).
//!
//! Fitted on the training view (`d × N`, instances as columns), a [`Standardizer`]
//! remembers per-feature means and inverse standard deviations so held-out instances
//! go through exactly the training-time transformation — the contract every member of
//! a [`crate::Pipeline`] has to honour.

use crate::{CoreError, Result};
use linalg::Matrix;

/// Floor below which a feature's standard deviation is treated as zero. Scaling such
/// a feature would divide by (numerical) zero, so [`Standardizer::fit`] rejects it
/// with a typed [`CoreError::DegenerateFeature`] instead of silently leaving the
/// column unscaled (the behaviour before the stage API landed — which made the same
/// pipeline mean different transforms depending on the data).
const MIN_STD: f64 = 1e-12;

/// A fitted per-feature center/scale transformation for one view.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    inverse_stds: Vec<f64>,
}

impl Standardizer {
    /// Learn the transformation from a `d × N` view. `center` subtracts the feature
    /// mean, `scale` divides by the feature's population standard deviation.
    ///
    /// When `scale` is requested and a feature has (numerically) zero variance, the
    /// fit fails with [`CoreError::DegenerateFeature`] naming the column: there is no
    /// scale that makes a constant feature unit-variance, and silently leaving it
    /// unscaled (the old behaviour) produced a transform that quietly depended on
    /// the data. Drop the column or fit with `scale = false`.
    pub fn fit(view: &Matrix, center: bool, scale: bool) -> Result<Self> {
        let d = view.rows();
        let n = view.cols().max(1) as f64;
        let mut means = vec![0.0; d];
        let mut inverse_stds = vec![1.0; d];
        for i in 0..d {
            let row = view.row(i);
            let mean = row.iter().sum::<f64>() / n;
            if center {
                means[i] = mean;
            }
            if scale {
                let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
                let std = var.sqrt();
                if std <= MIN_STD {
                    return Err(CoreError::DegenerateFeature {
                        column: i,
                        reason: format!(
                            "standard deviation {std:.3e} is below {MIN_STD:.0e}; a \
                             constant feature cannot be scaled to unit variance"
                        ),
                    });
                }
                inverse_stds[i] = 1.0 / std;
            }
        }
        Ok(Self {
            means,
            inverse_stds,
        })
    }

    /// Rebuild a fitted standardizer from its parts (the persistence path).
    pub fn from_parts(means: Vec<f64>, inverse_stds: Vec<f64>) -> Result<Self> {
        if means.len() != inverse_stds.len() {
            return Err(CoreError::InvalidInput(format!(
                "{} means but {} inverse stds",
                means.len(),
                inverse_stds.len()
            )));
        }
        Ok(Self {
            means,
            inverse_stds,
        })
    }

    /// The per-feature means subtracted by [`Standardizer::apply`].
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The per-feature inverse standard deviations multiplied by
    /// [`Standardizer::apply`].
    pub fn inverse_stds(&self) -> &[f64] {
        &self.inverse_stds
    }

    /// Apply the fitted transformation to a `d × M` view (any instance count).
    pub fn apply(&self, view: &Matrix) -> Result<Matrix> {
        if view.rows() != self.means.len() {
            return Err(CoreError::InvalidInput(format!(
                "view has {} features but the standardizer expects {}",
                view.rows(),
                self.means.len()
            )));
        }
        let mut out = view.clone();
        for i in 0..out.rows() {
            let mean = self.means[i];
            let inv = self.inverse_stds[i];
            for v in out.row_mut(i) {
                *v = (*v - mean) * inv;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_view() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 11.0, 9.0, 10.0]]).unwrap()
    }

    #[test]
    fn centers_and_scales_features() {
        let v = toy_view();
        let s = Standardizer::fit(&v, true, true).unwrap();
        let t = s.apply(&v).unwrap();
        for i in 0..2 {
            let mean: f64 = t.row(i).iter().sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12, "row {i} mean {mean}");
            let var: f64 = t.row(i).iter().map(|x| x * x).sum::<f64>() / 4.0;
            assert!((var - 1.0).abs() < 1e-12, "row {i} variance {var}");
        }
    }

    #[test]
    fn scaling_a_constant_feature_is_a_typed_error() {
        let v =
            Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 10.0, 10.0]]).unwrap();
        // Centering alone is fine — the constant row just becomes zero.
        let centered = Standardizer::fit(&v, true, false)
            .unwrap()
            .apply(&v)
            .unwrap();
        assert!(centered.row(1).iter().all(|&x| x == 0.0));
        // Scaling it names the offending column.
        match Standardizer::fit(&v, true, true) {
            Err(CoreError::DegenerateFeature { column, .. }) => assert_eq!(column, 1),
            other => panic!("expected DegenerateFeature, got {other:?}"),
        }
    }

    #[test]
    fn center_only_and_scale_only() {
        let v = toy_view();
        let centered = Standardizer::fit(&v, true, false)
            .unwrap()
            .apply(&v)
            .unwrap();
        assert!((centered[(0, 0)] + 1.5).abs() < 1e-12);
        let scaled = Standardizer::fit(&v, false, true)
            .unwrap()
            .apply(&v)
            .unwrap();
        // Mean is untouched when only scaling.
        let mean: f64 = scaled.row(0).iter().sum::<f64>() / 4.0;
        assert!(mean > 0.0);
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        let s = Standardizer::fit(&toy_view(), true, true).unwrap();
        assert!(s.apply(&Matrix::zeros(3, 4)).is_err());
        // Same feature count, different instance count is fine (out-of-sample use).
        assert!(s.apply(&Matrix::zeros(2, 9)).is_ok());
    }
}
