//! Feature-level estimators: BSF, CAT and the kernel analogues BSK, AVG.
//!
//! These are the paper's "no common subspace" baselines. They have no learned
//! parameters; fitting only validates shapes and records the allocation model, and
//! the models replay the feature-level construction on whatever instances they are
//! given.

use crate::model::{check_same_instances, check_square_kernels};
use crate::{
    CombineRule, CoreError, FitSpec, InputKind, MemoryModel, ModelState, MultiViewEstimator,
    MultiViewModel, Output, Result,
};
use baselines::feature::{
    average_kernels, concatenate_views, kernel_to_distances, view_as_instances,
};
use linalg::Matrix;

/// Store per-view feature dimensions (exact for any realistic width: `f64` holds
/// integers up to 2⁵³).
fn save_dims(state: &mut ModelState, dims: &[usize]) {
    state.put_vector("dims", &dims.iter().map(|&d| d as f64).collect::<Vec<_>>());
}

/// Read per-view feature dimensions written by [`save_dims`].
fn load_dims(state: &ModelState) -> Result<Vec<usize>> {
    state
        .vector("dims")?
        .iter()
        .map(|&d| {
            if d >= 0.0 && d.fract() == 0.0 {
                Ok(d as usize)
            } else {
                Err(CoreError::Persist(format!("invalid view dimension {d}")))
            }
        })
        .collect()
}

fn check_view_dims(views: &[Matrix], dims: &[usize]) -> Result<usize> {
    let n = check_same_instances(views)?;
    if views.len() != dims.len() {
        return Err(CoreError::InvalidInput(format!(
            "expected {} views, got {}",
            dims.len(),
            views.len()
        )));
    }
    for (p, (v, &d)) in views.iter().zip(dims.iter()).enumerate() {
        if v.rows() != d {
            return Err(CoreError::InvalidInput(format!(
                "view {p} has {} features but the model expects {d}",
                v.rows()
            )));
        }
    }
    Ok(n)
}

/// BSF — best single-view features. One candidate per view, selected on validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bsf;

impl MultiViewEstimator for Bsf {
    fn name(&self) -> &str {
        "BSF"
    }

    fn fit(&self, views: &[Matrix], _spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        Ok(bsf_model_from_parts(dims, n))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        Ok(Box::new(BsfModel {
            dims: load_dims(state)?,
            memory: state.memory()?,
        }))
    }
}

/// Build the registry's "BSF" model from per-view feature dimensions and a training
/// instance count (the streaming finalize path — BSF has no learned parameters).
pub fn bsf_model_from_parts(dims: Vec<usize>, n: usize) -> Box<dyn MultiViewModel> {
    let mut memory = MemoryModel::new();
    for (p, d) in dims.iter().enumerate() {
        memory.add_matrix(format!("view {p} features"), n, *d);
    }
    Box::new(BsfModel { dims, memory })
}

struct BsfModel {
    dims: Vec<usize>,
    memory: MemoryModel,
}

impl MultiViewModel for BsfModel {
    fn name(&self) -> &str {
        "BSF"
    }

    fn dim(&self) -> usize {
        0
    }

    fn transform(&self, _views: &[Matrix]) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "BSF has no single embedding: it produces one candidate per view, selected \
             on validation data; use outputs() or transform_view()"
                .into(),
        ))
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let expected = *self.dims.get(which).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.dims.len()
            ))
        })?;
        if view.rows() != expected {
            return Err(CoreError::InvalidInput(format!(
                "view {which} has {} features but the model expects {expected}",
                view.rows()
            )));
        }
        Ok(view_as_instances(view))
    }

    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        check_view_dims(views, &self.dims)?;
        Ok(views
            .iter()
            .map(|v| Output::Embedding(view_as_instances(v)))
            .collect())
    }

    fn output_labels(&self) -> Vec<String> {
        (0..self.dims.len()).map(|p| format!("view{p}")).collect()
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.dims.len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        save_dims(&mut state, &self.dims);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// CAT — concatenation of the L2-normalized features of all views.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cat;

impl MultiViewEstimator for Cat {
    fn name(&self) -> &str {
        "CAT"
    }

    fn fit(&self, views: &[Matrix], _spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        Ok(cat_model_from_parts(dims, n))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        Ok(Box::new(CatModel {
            dims: load_dims(state)?,
            memory: state.memory()?,
        }))
    }
}

/// Build the registry's "CAT" model from per-view feature dimensions and a training
/// instance count (the streaming finalize path — CAT has no learned parameters).
pub fn cat_model_from_parts(dims: Vec<usize>, n: usize) -> Box<dyn MultiViewModel> {
    let mut memory = MemoryModel::new();
    memory.add_matrix("concatenated features", n, dims.iter().sum());
    Box::new(CatModel { dims, memory })
}

struct CatModel {
    dims: Vec<usize>,
    memory: MemoryModel,
}

impl MultiViewModel for CatModel {
    fn name(&self) -> &str {
        "CAT"
    }

    fn dim(&self) -> usize {
        self.dims.iter().sum()
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        check_view_dims(views, &self.dims)?;
        Ok(concatenate_views(views))
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let expected = *self.dims.get(which).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.dims.len()
            ))
        })?;
        if view.rows() != expected {
            return Err(CoreError::InvalidInput(format!(
                "view {which} has {} features but the model expects {expected}",
                view.rows()
            )));
        }
        Ok(concatenate_views(std::slice::from_ref(view)))
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.dims.len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        save_dims(&mut state, &self.dims);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// BSK — best single-view kernel, evaluated through per-kernel distance matrices.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bsk;

impl MultiViewEstimator for Bsk {
    fn name(&self) -> &str {
        "BSK"
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn fit(&self, kernels: &[Matrix], _spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_square_kernels(kernels)?;
        let m = kernels.len();
        let mut memory = MemoryModel::new();
        for p in 0..m {
            memory.add_matrix(format!("kernel {p}"), n, n);
        }
        memory.add_matrix("distance matrices", n, n * m);
        Ok(Box::new(BskModel { n, m, memory }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        Ok(Box::new(BskModel {
            n: state.index("n")?,
            m: state.index("m")?,
            memory: state.memory()?,
        }))
    }
}

struct BskModel {
    n: usize,
    m: usize,
    memory: MemoryModel,
}

impl MultiViewModel for BskModel {
    fn name(&self) -> &str {
        "BSK"
    }

    fn dim(&self) -> usize {
        0
    }

    fn transform(&self, _kernels: &[Matrix]) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "BSK produces per-kernel distance matrices, not an embedding; use outputs()".into(),
        ))
    }

    fn transform_view(&self, _which: usize, _kernel: &Matrix) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "BSK produces per-kernel distance matrices, not an embedding; use outputs()".into(),
        ))
    }

    fn outputs(&self, kernels: &[Matrix]) -> Result<Vec<Output>> {
        let n = check_square_kernels(kernels)?;
        if n != self.n || kernels.len() != self.m {
            return Err(CoreError::InvalidInput(format!(
                "BSK was fitted on {} {}x{} kernels",
                self.m, self.n, self.n
            )));
        }
        Ok(kernels
            .iter()
            .map(|k| Output::Distances(kernel_to_distances(k)))
            .collect())
    }

    fn output_labels(&self) -> Vec<String> {
        (0..self.m).map(|p| format!("kernel{p}")).collect()
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.m
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("n", self.n as u64);
        state.put_int("m", self.m as u64);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// AVG — average of the trace-normalized per-view kernels, evaluated by distances.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvgKernel;

impl MultiViewEstimator for AvgKernel {
    fn name(&self) -> &str {
        "AVG"
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn fit(&self, kernels: &[Matrix], _spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_square_kernels(kernels)?;
        let m = kernels.len();
        let mut memory = MemoryModel::new();
        for p in 0..m {
            memory.add_matrix(format!("kernel {p}"), n, n);
        }
        memory.add_matrix("averaged kernel", n, n);
        Ok(Box::new(AvgKernelModel { n, m, memory }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        Ok(Box::new(AvgKernelModel {
            n: state.index("n")?,
            m: state.index("m")?,
            memory: state.memory()?,
        }))
    }
}

struct AvgKernelModel {
    n: usize,
    m: usize,
    memory: MemoryModel,
}

impl MultiViewModel for AvgKernelModel {
    fn name(&self) -> &str {
        "AVG"
    }

    fn dim(&self) -> usize {
        0
    }

    fn transform(&self, _kernels: &[Matrix]) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "AVG produces a distance matrix, not an embedding; use outputs()".into(),
        ))
    }

    fn transform_view(&self, _which: usize, _kernel: &Matrix) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "AVG produces a distance matrix, not an embedding; use outputs()".into(),
        ))
    }

    fn outputs(&self, kernels: &[Matrix]) -> Result<Vec<Output>> {
        let n = check_square_kernels(kernels)?;
        if n != self.n || kernels.len() != self.m {
            return Err(CoreError::InvalidInput(format!(
                "AVG was fitted on {} {}x{} kernels",
                self.m, self.n, self.n
            )));
        }
        let avg = average_kernels(kernels);
        Ok(vec![Output::Distances(kernel_to_distances(&avg))])
    }

    fn output_labels(&self) -> Vec<String> {
        vec!["averaged-kernel".to_string()]
    }

    fn combine(&self) -> CombineRule {
        CombineRule::SelectBest
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.m
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("n", self.n as u64);
        state.put_int("m", self.m as u64);
        state.put_memory(&self.memory);
        Ok(state)
    }
}
