//! Linear-method estimators: pairwise CCA, CCA-LS, CCA-MAXVAR, PCA and TCCA.

use crate::model::check_same_instances;
use crate::{
    CombineRule, CoreError, FitSpec, MemoryModel, MultiViewEstimator, MultiViewModel, Output,
    Result,
};
use baselines::cca_ls::CcaLsOptions;
use baselines::{CcaLs, CcaMaxVar, PairwiseCca, Pca};
use linalg::Matrix;
use tcca::Tcca;

/// CCA fitted on every pair of views — the paper's "CCA (BST)" / "CCA (AVG)".
#[derive(Debug, Clone, Copy)]
pub struct PairwiseCcaEstimator {
    rule: CombineRule,
}

impl PairwiseCcaEstimator {
    /// The "CCA (BST)" variant: keep the best pair on validation data.
    pub fn best() -> Self {
        Self {
            rule: CombineRule::SelectBest,
        }
    }

    /// The "CCA (AVG)" variant: combine the predictions of all pairs.
    pub fn average() -> Self {
        Self {
            rule: CombineRule::Average,
        }
    }
}

impl MultiViewEstimator for PairwiseCcaEstimator {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "CCA (BST)",
            CombineRule::Average => "CCA (AVG)",
        }
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        let inner = PairwiseCca::fit(views, spec.rank, spec.epsilon)?;
        let mut memory = MemoryModel::new();
        let mut dim = 0;
        for (index, &(p, q)) in inner.pairs().iter().enumerate() {
            memory.add_matrix(format!("C{p}{p}"), dims[p], dims[p]);
            memory.add_matrix(format!("C{q}{q}"), dims[q], dims[q]);
            memory.add_matrix(format!("C{p}{q}"), dims[p], dims[q]);
            let pair_dim = 2 * inner.models()[index].projections()[0].cols();
            memory.add_matrix(format!("embedding {p}-{q}"), n, pair_dim);
            dim += pair_dim;
        }
        Ok(Box::new(PairwiseCcaModel {
            rule: self.rule,
            inner,
            dim,
            memory,
        }))
    }
}

struct PairwiseCcaModel {
    rule: CombineRule,
    inner: PairwiseCca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for PairwiseCcaModel {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "CCA (BST)",
            CombineRule::Average => "CCA (AVG)",
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        let mut out: Option<Matrix> = None;
        for z in self.inner.transform_all(views)? {
            out = Some(match out {
                None => z,
                Some(acc) => acc.hstack(&z)?,
            });
        }
        out.ok_or_else(|| CoreError::InvalidInput("pairwise CCA fitted on no pairs".into()))
    }

    fn transform_view(&self, _which: usize, _view: &Matrix) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "pairwise CCA defines projections per view pair, not per view; use outputs()".into(),
        ))
    }

    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        Ok(self
            .inner
            .transform_all(views)?
            .into_iter()
            .map(Output::Embedding)
            .collect())
    }

    fn combine(&self) -> CombineRule {
        self.rule
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}

/// CCA-LS — multiset CCA via coupled least squares (Vía et al. 2007).
#[derive(Debug, Clone, Copy, Default)]
pub struct CcaLsEstimator;

impl MultiViewEstimator for CcaLsEstimator {
    fn name(&self) -> &str {
        "CCA-LS"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let options = CcaLsOptions {
            epsilon: spec.epsilon,
            max_iterations: spec.max_iterations.max(1),
            tolerance: spec.tolerance,
            seed: spec.seed,
        };
        let inner = CcaLs::fit_with_options(views, spec.rank, options)?;
        let mut memory = MemoryModel::new();
        for (p, v) in views.iter().enumerate() {
            memory.add_matrix(format!("gram {p}"), v.rows(), v.rows());
        }
        let dim: usize = inner.projections().iter().map(Matrix::cols).sum();
        memory.add_matrix("embedding", n, dim);
        Ok(Box::new(CcaLsModel { inner, dim, memory }))
    }
}

struct CcaLsModel {
    inner: CcaLs,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for CcaLsModel {
    fn name(&self) -> &str {
        "CCA-LS"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view(which, view)?)
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}

/// CCA-MAXVAR — multiset CCA via the SVD of stacked whitened views (Kettenring 1971).
#[derive(Debug, Clone, Copy, Default)]
pub struct CcaMaxVarEstimator;

impl MultiViewEstimator for CcaMaxVarEstimator {
    fn name(&self) -> &str {
        "CCA-MAXVAR"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let inner = CcaMaxVar::fit(views, spec.rank, spec.epsilon)?;
        let total: usize = views.iter().map(Matrix::rows).sum();
        let mut memory = MemoryModel::new();
        memory.add_matrix("stacked whitened views", n, total);
        let dim: usize = inner.projections().iter().map(Matrix::cols).sum();
        memory.add_matrix("embedding", n, dim);
        Ok(Box::new(CcaMaxVarModel { inner, dim, memory }))
    }
}

struct CcaMaxVarModel {
    inner: CcaMaxVar,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for CcaMaxVarModel {
    fn name(&self) -> &str {
        "CCA-MAXVAR"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view(which, view)?)
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}

/// Per-view PCA to `spec.rank` components, concatenated across views. Not one of the
/// paper's compared methods on its own, but the building block of DSE/SSMVD and the
/// natural unsupervised reference point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcaEstimator;

impl MultiViewEstimator for PcaEstimator {
    fn name(&self) -> &str {
        "PCA"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        if spec.rank == 0 {
            return Err(CoreError::InvalidInput("rank must be positive".into()));
        }
        let mut pcas = Vec::with_capacity(views.len());
        let mut memory = MemoryModel::new();
        let mut dim = 0;
        for (p, v) in views.iter().enumerate() {
            let pca = Pca::fit(v, spec.rank)?;
            let k = pca.components().cols();
            memory.add_matrix(format!("components {p}"), v.rows(), k);
            memory.add_matrix(format!("scores {p}"), n, k);
            dim += k;
            pcas.push(pca);
        }
        Ok(Box::new(PcaModel { pcas, dim, memory }))
    }
}

struct PcaModel {
    pcas: Vec<Pca>,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for PcaModel {
    fn name(&self) -> &str {
        "PCA"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        if views.len() != self.pcas.len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} views, got {}",
                self.pcas.len(),
                views.len()
            )));
        }
        let mut out: Option<Matrix> = None;
        for (pca, v) in self.pcas.iter().zip(views.iter()) {
            let z = pca.transform(v)?;
            out = Some(match out {
                None => z,
                Some(acc) => acc.hstack(&z)?,
            });
        }
        out.ok_or_else(|| CoreError::InvalidInput("PCA fitted on no views".into()))
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let pca = self.pcas.get(which).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.pcas.len()
            ))
        })?;
        Ok(pca.transform(view)?)
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}

/// TCCA — the paper's linear tensor CCA.
#[derive(Debug, Clone, Copy, Default)]
pub struct TccaEstimator;

impl MultiViewEstimator for TccaEstimator {
    fn name(&self) -> &str {
        "TCCA"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let inner = Tcca::fit(views, &spec.tcca_options())?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        let mut memory = MemoryModel::new();
        memory.add_tensor("covariance tensor", &dims);
        let mut dim = 0;
        for (p, d) in dims.iter().enumerate() {
            let r = inner.projections()[p].cols();
            memory.add_matrix(format!("whitener {p}"), *d, *d);
            memory.add_matrix(format!("factor {p}"), *d, r);
            dim += r;
        }
        memory.add_matrix("embedding", n, dim);
        Ok(Box::new(TccaModel { inner, dim, memory }))
    }
}

struct TccaModel {
    inner: Tcca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for TccaModel {
    fn name(&self) -> &str {
        "TCCA"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        Ok(self.inner.transform_view(which, view)?)
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}
