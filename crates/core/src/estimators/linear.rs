//! Linear-method estimators: pairwise CCA, CCA-LS, CCA-MAXVAR, PCA and TCCA.

use crate::model::check_same_instances;
use crate::stage::{fit_whitener, stage_seed};
use crate::{
    CombineRule, CoreError, FitSpec, MemoryModel, ModelState, MultiViewEstimator, MultiViewModel,
    Output, Result,
};
use baselines::cca_ls::CcaLsOptions;
use baselines::{Cca, CcaLs, CcaMaxVar, PairwiseCca, Pca};
use linalg::Matrix;
use tcca::{DecompositionMethod, Tcca, TccaOptions};

/// Encode a decomposition method as a stable on-disk discriminant.
pub(crate) fn decomposition_to_int(method: DecompositionMethod) -> u64 {
    match method {
        DecompositionMethod::Als => 0,
        DecompositionMethod::Hopm => 1,
        DecompositionMethod::PowerMethod => 2,
    }
}

/// Decode a decomposition-method discriminant written by [`decomposition_to_int`].
pub(crate) fn decomposition_from_int(v: u64) -> Result<DecompositionMethod> {
    match v {
        0 => Ok(DecompositionMethod::Als),
        1 => Ok(DecompositionMethod::Hopm),
        2 => Ok(DecompositionMethod::PowerMethod),
        other => Err(CoreError::Persist(format!(
            "unknown decomposition method discriminant {other}"
        ))),
    }
}

/// Store a fitted per-view PCA's parts under `prefix/…`.
pub(crate) fn save_pca(state: &mut ModelState, prefix: &str, pca: &Pca) {
    state.put_vector(format!("{prefix}/mean"), pca.mean());
    state.put_matrix(format!("{prefix}/components"), pca.components());
    state.put_vector(format!("{prefix}/variance"), pca.explained_variance());
}

/// Rebuild a fitted per-view PCA from `prefix/…`.
pub(crate) fn load_pca(state: &ModelState, prefix: &str) -> Result<Pca> {
    Ok(Pca::from_parts(
        state.vector(&format!("{prefix}/mean"))?.to_vec(),
        state.matrix(&format!("{prefix}/components"))?.clone(),
        state.vector(&format!("{prefix}/variance"))?.to_vec(),
    )?)
}

/// Memory model and embedding dimension of a pairwise-CCA model, shared by the batch
/// fit and the streaming finalize path so both produce identical models.
fn pairwise_cca_memory(inner: &PairwiseCca, dims: &[usize], n: usize) -> (MemoryModel, usize) {
    let mut memory = MemoryModel::new();
    let mut dim = 0;
    for (index, &(p, q)) in inner.pairs().iter().enumerate() {
        memory.add_matrix(format!("C{p}{p}"), dims[p], dims[p]);
        memory.add_matrix(format!("C{q}{q}"), dims[q], dims[q]);
        memory.add_matrix(format!("C{p}{q}"), dims[p], dims[q]);
        let pair_dim = 2 * inner.models()[index].projections()[0].cols();
        memory.add_matrix(format!("embedding {p}-{q}"), n, pair_dim);
        dim += pair_dim;
    }
    (memory, dim)
}

/// Wrap per-pair fitted [`Cca`] models into the registry's "CCA (BST)"/"CCA (AVG)"
/// model (the streaming finalize path). `models` must be in
/// [`baselines::pairwise::view_pairs`] order; `n` is the number of training
/// instances the stats were accumulated over. Produces exactly what
/// [`PairwiseCcaEstimator::fit`] builds from the same per-pair models.
pub fn pairwise_cca_model_from_parts(
    best: bool,
    dims: &[usize],
    models: Vec<Cca>,
    n: usize,
) -> Result<Box<dyn MultiViewModel>> {
    let inner = PairwiseCca::from_models(dims.len(), models)?;
    let (memory, dim) = pairwise_cca_memory(&inner, dims, n);
    Ok(Box::new(PairwiseCcaModel {
        rule: if best {
            CombineRule::SelectBest
        } else {
            CombineRule::Average
        },
        num_views: dims.len(),
        inner,
        dim,
        memory,
    }))
}

/// CCA fitted on every pair of views — the paper's "CCA (BST)" / "CCA (AVG)".
#[derive(Debug, Clone, Copy)]
pub struct PairwiseCcaEstimator {
    rule: CombineRule,
}

impl PairwiseCcaEstimator {
    /// The "CCA (BST)" variant: keep the best pair on validation data.
    pub fn best() -> Self {
        Self {
            rule: CombineRule::SelectBest,
        }
    }

    /// The "CCA (AVG)" variant: combine the predictions of all pairs.
    pub fn average() -> Self {
        Self {
            rule: CombineRule::Average,
        }
    }
}

impl MultiViewEstimator for PairwiseCcaEstimator {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "CCA (BST)",
            CombineRule::Average => "CCA (AVG)",
        }
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        let inner = PairwiseCca::fit(views, spec.rank, spec.epsilon)?;
        let (memory, dim) = pairwise_cca_memory(&inner, &dims, n);
        Ok(Box::new(PairwiseCcaModel {
            rule: self.rule,
            num_views: views.len(),
            inner,
            dim,
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let num_views = state.index("num_views")?;
        let pairs = state.index("pairs/len")?;
        let mut models = Vec::with_capacity(pairs);
        for i in 0..pairs {
            models.push(Cca::from_parts(
                [
                    state.vector(&format!("pairs/{i}/mean0"))?.to_vec(),
                    state.vector(&format!("pairs/{i}/mean1"))?.to_vec(),
                ],
                [
                    state.matrix(&format!("pairs/{i}/proj0"))?.clone(),
                    state.matrix(&format!("pairs/{i}/proj1"))?.clone(),
                ],
                state.vector(&format!("pairs/{i}/correlations"))?.to_vec(),
            )?);
        }
        Ok(Box::new(PairwiseCcaModel {
            rule: self.rule,
            num_views,
            inner: PairwiseCca::from_models(num_views, models)?,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

struct PairwiseCcaModel {
    rule: CombineRule,
    num_views: usize,
    inner: PairwiseCca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for PairwiseCcaModel {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "CCA (BST)",
            CombineRule::Average => "CCA (AVG)",
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        let mut out: Option<Matrix> = None;
        for z in self.inner.transform_all(views)? {
            out = Some(match out {
                None => z,
                Some(acc) => acc.hstack(&z)?,
            });
        }
        out.ok_or_else(|| CoreError::InvalidInput("pairwise CCA fitted on no pairs".into()))
    }

    fn transform_view(&self, _which: usize, _view: &Matrix) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "pairwise CCA defines projections per view pair, not per view; use outputs()".into(),
        ))
    }

    fn outputs(&self, views: &[Matrix]) -> Result<Vec<Output>> {
        Ok(self
            .inner
            .transform_all(views)?
            .into_iter()
            .map(Output::Embedding)
            .collect())
    }

    fn output_labels(&self) -> Vec<String> {
        self.inner
            .pairs()
            .iter()
            .map(|(p, q)| format!("pair({p},{q})"))
            .collect()
    }

    fn combine(&self) -> CombineRule {
        self.rule
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.num_views
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("num_views", self.num_views as u64);
        state.put_int("dim", self.dim as u64);
        state.put_int("pairs/len", self.inner.models().len() as u64);
        for (i, cca) in self.inner.models().iter().enumerate() {
            state.put_vector(format!("pairs/{i}/mean0"), &cca.means()[0]);
            state.put_vector(format!("pairs/{i}/mean1"), &cca.means()[1]);
            state.put_matrix(format!("pairs/{i}/proj0"), &cca.projections()[0]);
            state.put_matrix(format!("pairs/{i}/proj1"), &cca.projections()[1]);
            state.put_vector(format!("pairs/{i}/correlations"), cca.correlations());
        }
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// CCA-LS — multiset CCA via coupled least squares (Vía et al. 2007).
#[derive(Debug, Clone, Copy, Default)]
pub struct CcaLsEstimator;

impl MultiViewEstimator for CcaLsEstimator {
    fn name(&self) -> &str {
        "CCA-LS"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let options = CcaLsOptions {
            epsilon: spec.epsilon,
            max_iterations: spec.max_iterations.max(1),
            tolerance: spec.tolerance,
            seed: spec.seed,
        };
        let inner = CcaLs::fit_with_options(views, spec.rank, options)?;
        let mut memory = MemoryModel::new();
        for (p, v) in views.iter().enumerate() {
            memory.add_matrix(format!("gram {p}"), v.rows(), v.rows());
        }
        let dim: usize = inner.projections().iter().map(Matrix::cols).sum();
        memory.add_matrix("embedding", n, dim);
        Ok(Box::new(CcaLsModel { inner, dim, memory }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let inner = CcaLs::from_parts(
            state.vectors("means")?,
            state.matrices("projections")?,
            state.vector("alignments")?.to_vec(),
            state.index("iterations")?,
        )?;
        Ok(Box::new(CcaLsModel {
            inner,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

struct CcaLsModel {
    inner: CcaLs,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for CcaLsModel {
    fn name(&self) -> &str {
        "CCA-LS"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view(which, view)?)
    }

    fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view_cols(which, cols)?)
    }

    fn view_projection(&self, which: usize) -> Option<crate::ViewProjection<'_>> {
        Some(crate::ViewProjection {
            weights: self.inner.projections().get(which)?,
            shift: Some(self.inner.means().get(which)?),
        })
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.inner.projections().len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("dim", self.dim as u64);
        state.put_vectors("means", self.inner.means());
        state.put_matrices("projections", self.inner.projections());
        state.put_vector("alignments", self.inner.alignments());
        state.put_int("iterations", self.inner.iterations() as u64);
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// CCA-MAXVAR — multiset CCA via the SVD of stacked whitened views (Kettenring 1971).
#[derive(Debug, Clone, Copy, Default)]
pub struct CcaMaxVarEstimator;

impl MultiViewEstimator for CcaMaxVarEstimator {
    fn name(&self) -> &str {
        "CCA-MAXVAR"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let inner = CcaMaxVar::fit(views, spec.rank, spec.epsilon)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        Ok(cca_maxvar_model_from_parts(inner, &dims, n))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let inner = CcaMaxVar::from_parts(
            state.vectors("means")?,
            state.matrices("projections")?,
            state.vector("singular_values")?.to_vec(),
        )?;
        Ok(Box::new(CcaMaxVarModel {
            inner,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

/// Wrap a fitted [`CcaMaxVar`] into the registry's "CCA-MAXVAR" model (the streaming
/// finalize path). `n` is the number of training instances the stats were accumulated
/// over. Produces exactly what [`CcaMaxVarEstimator::fit`] builds from the same inner
/// model.
pub fn cca_maxvar_model_from_parts(
    inner: CcaMaxVar,
    dims: &[usize],
    n: usize,
) -> Box<dyn MultiViewModel> {
    let total: usize = dims.iter().sum();
    let mut memory = MemoryModel::new();
    memory.add_matrix("stacked whitened views", n, total);
    let dim: usize = inner.projections().iter().map(Matrix::cols).sum();
    memory.add_matrix("embedding", n, dim);
    Box::new(CcaMaxVarModel { inner, dim, memory })
}

struct CcaMaxVarModel {
    inner: CcaMaxVar,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for CcaMaxVarModel {
    fn name(&self) -> &str {
        "CCA-MAXVAR"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view(which, view)?)
    }

    fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        if which >= self.inner.projections().len() {
            return Err(CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.inner.projections().len()
            )));
        }
        Ok(self.inner.transform_view_cols(which, cols)?)
    }

    fn view_projection(&self, which: usize) -> Option<crate::ViewProjection<'_>> {
        Some(crate::ViewProjection {
            weights: self.inner.projections().get(which)?,
            shift: Some(self.inner.means().get(which)?),
        })
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.inner.projections().len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("dim", self.dim as u64);
        state.put_vectors("means", self.inner.means());
        state.put_matrices("projections", self.inner.projections());
        state.put_vector("singular_values", self.inner.singular_values());
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// Per-view PCA to `spec.rank` components, concatenated across views. Not one of the
/// paper's compared methods on its own, but the building block of DSE/SSMVD and the
/// natural unsupervised reference point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcaEstimator;

impl MultiViewEstimator for PcaEstimator {
    fn name(&self) -> &str {
        "PCA"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        if spec.rank == 0 {
            return Err(CoreError::InvalidInput("rank must be positive".into()));
        }
        let pcas = views
            .iter()
            .map(|v| Pca::fit(v, spec.rank))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(pca_model_from_parts(pcas, n))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let n = state.index("pcas/len")?;
        let pcas = (0..n)
            .map(|i| load_pca(state, &format!("pcas/{i}")))
            .collect::<Result<Vec<_>>>()?;
        Ok(Box::new(PcaModel {
            pcas,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

/// Wrap per-view fitted [`Pca`] models into the registry's "PCA" model (the streaming
/// finalize path). `n` is the number of training instances the stats were accumulated
/// over. Produces exactly what [`PcaEstimator::fit`] builds from the same per-view
/// models.
pub fn pca_model_from_parts(pcas: Vec<Pca>, n: usize) -> Box<dyn MultiViewModel> {
    let mut memory = MemoryModel::new();
    let mut dim = 0;
    for (p, pca) in pcas.iter().enumerate() {
        let k = pca.components().cols();
        memory.add_matrix(format!("components {p}"), pca.components().rows(), k);
        memory.add_matrix(format!("scores {p}"), n, k);
        dim += k;
    }
    Box::new(PcaModel { pcas, dim, memory })
}

struct PcaModel {
    pcas: Vec<Pca>,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for PcaModel {
    fn name(&self) -> &str {
        "PCA"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        if views.len() != self.pcas.len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} views, got {}",
                self.pcas.len(),
                views.len()
            )));
        }
        let mut out: Option<Matrix> = None;
        for (pca, v) in self.pcas.iter().zip(views.iter()) {
            let z = pca.transform(v)?;
            out = Some(match out {
                None => z,
                Some(acc) => acc.hstack(&z)?,
            });
        }
        out.ok_or_else(|| CoreError::InvalidInput("PCA fitted on no views".into()))
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        let pca = self.pcas.get(which).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.pcas.len()
            ))
        })?;
        Ok(pca.transform(view)?)
    }

    fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        let pca = self.pcas.get(which).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.pcas.len()
            ))
        })?;
        Ok(pca.transform_cols(cols)?)
    }

    fn view_projection(&self, which: usize) -> Option<crate::ViewProjection<'_>> {
        let pca = self.pcas.get(which)?;
        Some(crate::ViewProjection {
            weights: pca.components(),
            shift: Some(pca.mean()),
        })
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.pcas.len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("dim", self.dim as u64);
        state.put_int("pcas/len", self.pcas.len() as u64);
        for (i, pca) in self.pcas.iter().enumerate() {
            save_pca(&mut state, &format!("pcas/{i}"), pca);
        }
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// TCCA — the paper's linear tensor CCA.
#[derive(Debug, Clone, Copy, Default)]
pub struct TccaEstimator;

impl MultiViewEstimator for TccaEstimator {
    fn name(&self) -> &str {
        "TCCA"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let dims: Vec<usize> = views.iter().map(Matrix::rows).collect();
        if spec.whiten.is_none() {
            let inner = Tcca::fit(views, &spec.tcca_options())?;
            return Ok(tcca_model_from_parts(inner, &dims, n));
        }

        // Spec-driven whitening path: decorrelate (and, for the randomized mode,
        // reduce) each view up front, fit TCCA on the whitened views — whose
        // internal `(C + εI)^{-1/2}` is now a cheap k × k problem — and fold the
        // whitener into the projection. The fitted model keeps the exact same
        // shape as the plain path (`d × r` projections plus per-view means), so
        // persistence, serving's zero-copy `transform_view_cols` and the f32
        // shadow path are untouched.
        let mut means = Vec::with_capacity(views.len());
        let mut whiteners = Vec::with_capacity(views.len());
        let mut whitened = Vec::with_capacity(views.len());
        for (p, v) in views.iter().enumerate() {
            let (mean, weights) = fit_whitener(v, spec.whiten, spec, stage_seed(spec.seed, p))?
                .ok_or_else(|| CoreError::InvalidInput("whitening mode resolved to none".into()))?;
            // Z = Wᵀ(X − μ·1ᵀ), k × N — centering happens while the GEMM packs.
            let z = linalg::ColsView::from_matrices([v])?
                .shifted_t_matmul(Some(&mean), &weights)?
                .transpose();
            means.push(mean);
            whiteners.push(weights);
            whitened.push(z);
        }
        let inner = Tcca::fit(&whitened, &spec.tcca_options())?;
        // transform_view(x) = H_pᵀ · W_pᵀ · (x − μ_p): composite projections
        // W_p H_p (the inner means of the whitened views are exactly zero).
        let projections = whiteners
            .iter()
            .zip(inner.projections())
            .map(|(w, h)| w.matmul(h))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let mut memory = MemoryModel::new();
        let inner_dims: Vec<usize> = whitened.iter().map(Matrix::rows).collect();
        memory.add_tensor("covariance tensor", &inner_dims);
        let mut dim = 0;
        for (p, proj) in projections.iter().enumerate() {
            memory.add_matrix(format!("whitener {p}"), dims[p], inner_dims[p]);
            memory.add_matrix(format!("factor {p}"), proj.rows(), proj.cols());
            dim += proj.cols();
        }
        memory.add_matrix("embedding", n, dim);
        let composed = Tcca::from_parts(
            means,
            projections,
            inner.correlations().to_vec(),
            spec.tcca_options(),
        )?;
        Ok(Box::new(TccaModel {
            inner: composed,
            dim,
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let options = TccaOptions {
            rank: state.index("options/rank")?,
            epsilon: state.scalar("options/epsilon")?,
            method: decomposition_from_int(state.int("options/method")?)?,
            max_iterations: state.index("options/max_iterations")?,
            tolerance: state.scalar("options/tolerance")?,
            seed: state.int("options/seed")?,
        };
        let mut inner = Tcca::from_parts(
            state.vectors("means")?,
            state.matrices("projections")?,
            state.vector("correlations")?.to_vec(),
            options,
        )?;
        // Files persisted before streaming refits existed carry no CP factors; they
        // load fine and simply cannot warm-start a refit.
        if state.contains("factors/len") {
            inner = inner.with_factors(state.matrices("factors")?)?;
        }
        Ok(Box::new(TccaModel {
            inner,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

/// Wrap a fitted [`Tcca`] into the registry's "TCCA" model (the streaming finalize
/// path). `n` is the number of training instances the stats were accumulated over.
/// Produces exactly what [`TccaEstimator::fit`] builds from the same inner model.
pub fn tcca_model_from_parts(inner: Tcca, dims: &[usize], n: usize) -> Box<dyn MultiViewModel> {
    let mut memory = MemoryModel::new();
    memory.add_tensor("covariance tensor", dims);
    let mut dim = 0;
    for (p, d) in dims.iter().enumerate() {
        let r = inner.projections()[p].cols();
        memory.add_matrix(format!("whitener {p}"), *d, *d);
        memory.add_matrix(format!("factor {p}"), *d, r);
        dim += r;
    }
    memory.add_matrix("embedding", n, dim);
    Box::new(TccaModel { inner, dim, memory })
}

struct TccaModel {
    inner: Tcca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for TccaModel {
    fn name(&self) -> &str {
        "TCCA"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(views)?)
    }

    fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        Ok(self.inner.transform_view(which, view)?)
    }

    fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        Ok(self.inner.transform_view_cols(which, cols)?)
    }

    fn view_projection(&self, which: usize) -> Option<crate::ViewProjection<'_>> {
        Some(crate::ViewProjection {
            weights: self.inner.projections().get(which)?,
            shift: Some(self.inner.means().get(which)?),
        })
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.inner.num_views()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("dim", self.dim as u64);
        state.put_vectors("means", self.inner.means());
        state.put_matrices("projections", self.inner.projections());
        state.put_vector("correlations", self.inner.correlations());
        let options = self.inner.options();
        state.put_int("options/rank", options.rank as u64);
        state.put_scalar("options/epsilon", options.epsilon);
        state.put_int("options/method", decomposition_to_int(options.method));
        state.put_int("options/max_iterations", options.max_iterations as u64);
        state.put_scalar("options/tolerance", options.tolerance);
        state.put_int("options/seed", options.seed);
        if !self.inner.factors().is_empty() {
            state.put_matrices("factors", self.inner.factors());
        }
        state.put_memory(&self.memory);
        Ok(state)
    }
}
