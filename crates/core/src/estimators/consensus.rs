//! Consensus estimators: the second stage of DSE and SSMVD.
//!
//! Both methods are *transductive*: they learn an `N × r` consensus of the training
//! instances and define no out-of-sample projection (the paper runs them on
//! subsampled pools for exactly this reason). Their models therefore return the
//! training-time consensus from `transform` when called with matching instance
//! counts, and a descriptive error otherwise — the uniform surface the rest of the
//! stack relies on, replacing the old `embedding()`-only accessors.
//!
//! The paper's full methods are these estimators wrapped in
//! [`crate::Pipeline::with_pca`] (see [`crate::estimators::dse_pipeline`] and
//! [`crate::estimators::ssmvd_pipeline`]), which contributes the per-view PCA
//! pre-reduction that used to be hand-rolled inside `Dse::fit` / `Ssmvd::fit`.

use crate::model::check_same_instances;
use crate::{
    CoreError, FitSpec, MemoryModel, ModelState, MultiViewEstimator, MultiViewModel, Result,
};
use baselines::dse::consensus_embedding;
use baselines::ssmvd::{irls_consensus, SsmvdOptions};
use linalg::Matrix;

fn transpose_to_instance_rows(views: &[Matrix]) -> Vec<Matrix> {
    views.iter().map(Matrix::transpose).collect()
}

fn transductive_error(name: &str) -> CoreError {
    CoreError::InvalidInput(format!(
        "{name} is transductive: it embeds only the instances it was fitted on and has \
         no out-of-sample projection"
    ))
}

/// Cheap exact signature of one input view, recorded at fit time so `transform` can
/// tell "the training views again" (legal for a transductive method) apart from a
/// *different* batch that merely has the same instance count. All operations in the
/// stack are deterministic, so replaying the training inputs reproduces these values
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
struct ViewFingerprint {
    rows: usize,
    cols: usize,
    frobenius: f64,
    first: f64,
    last: f64,
}

fn fingerprint(view: &Matrix) -> ViewFingerprint {
    let (rows, cols) = (view.rows(), view.cols());
    let (first, last) = if rows > 0 && cols > 0 {
        (view[(0, 0)], view[(rows - 1, cols - 1)])
    } else {
        (0.0, 0.0)
    };
    ViewFingerprint {
        rows,
        cols,
        frobenius: view.frobenius_norm(),
        first,
        last,
    }
}

struct ConsensusModel {
    name: &'static str,
    embedding: Matrix,
    fingerprints: Vec<ViewFingerprint>,
    memory: MemoryModel,
}

impl MultiViewModel for ConsensusModel {
    fn name(&self) -> &str {
        self.name
    }

    fn dim(&self) -> usize {
        self.embedding.cols()
    }

    fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        check_same_instances(views)?;
        if views.len() != self.fingerprints.len() {
            return Err(CoreError::InvalidInput(format!(
                "expected {} views, got {}",
                self.fingerprints.len(),
                views.len()
            )));
        }
        let same_batch = views
            .iter()
            .zip(self.fingerprints.iter())
            .all(|(v, fp)| &fingerprint(v) == fp);
        if !same_batch {
            return Err(transductive_error(self.name));
        }
        Ok(self.embedding.clone())
    }

    fn transform_view(&self, _which: usize, _view: &Matrix) -> Result<Matrix> {
        Err(transductive_error(self.name))
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.fingerprints.len()
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_matrix("embedding", &self.embedding);
        state.put_int("fingerprints/len", self.fingerprints.len() as u64);
        for (i, fp) in self.fingerprints.iter().enumerate() {
            // Shape counts are exact in f64 far beyond any realistic view size; the
            // three statistics are stored as their exact bit patterns, so the loaded
            // model accepts exactly the same training batches the original did.
            state.put_vector(
                format!("fingerprints/{i}"),
                &[
                    fp.rows as f64,
                    fp.cols as f64,
                    fp.frobenius,
                    fp.first,
                    fp.last,
                ],
            );
        }
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// Shared loader for the two consensus models ([`DseConsensus`] / [`SsmvdConsensus`]
/// produce the same model shape and differ only in name).
fn load_consensus(name: &'static str, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
    let len = state.index("fingerprints/len")?;
    let mut fingerprints = Vec::with_capacity(len);
    for i in 0..len {
        let raw = state.vector(&format!("fingerprints/{i}"))?;
        if raw.len() != 5 {
            return Err(CoreError::Persist(format!(
                "fingerprint {i} has {} entries, expected 5",
                raw.len()
            )));
        }
        fingerprints.push(ViewFingerprint {
            rows: raw[0] as usize,
            cols: raw[1] as usize,
            frobenius: raw[2],
            first: raw[3],
            last: raw[4],
        });
    }
    Ok(Box::new(ConsensusModel {
        name,
        embedding: state.matrix("embedding")?.clone(),
        fingerprints,
        memory: state.memory()?,
    }))
}

/// The consensus stage of DSE (Long et al. 2008): unit-Frobenius normalization of the
/// per-view embeddings followed by the top-`rank` left singular subspace of their
/// column stack.
#[derive(Debug, Clone, Copy, Default)]
pub struct DseConsensus;

impl MultiViewEstimator for DseConsensus {
    fn name(&self) -> &str {
        "DSE"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let embeddings = transpose_to_instance_rows(views);
        let (embedding, _residual) = consensus_embedding(&embeddings, spec.rank)?;
        let mut memory = MemoryModel::new();
        memory.add_matrix("consensus", n, embedding.cols());
        Ok(Box::new(ConsensusModel {
            name: "DSE",
            embedding,
            fingerprints: views.iter().map(fingerprint).collect(),
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        load_consensus("DSE", state)
    }
}

/// The consensus stage of SSMVD (Han et al. 2012): the IRLS-reweighted consensus that
/// down-weights poorly-agreeing views (the group-sparse behaviour).
///
/// The IRLS loop runs under the spec's *general* iteration budget
/// ([`FitSpec::max_iterations`], default 100) — deliberately superseding the legacy
/// `SsmvdOptions::default()` budget of 10. The loop is convergence-bounded (it stops
/// once the weight change drops below 1e-8), so the larger budget only matters for
/// slow-converging inputs, where it trades time for a properly converged consensus.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsmvdConsensus;

impl MultiViewEstimator for SsmvdConsensus {
    fn name(&self) -> &str {
        "SSMVD"
    }

    fn fit(&self, views: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_same_instances(views)?;
        let embeddings = transpose_to_instance_rows(views);
        let options = SsmvdOptions {
            per_view_dim: spec.effective_per_view_dim(),
            max_iterations: spec.max_iterations.max(1),
            ..SsmvdOptions::default()
        };
        let (embedding, _weights, _iterations) = irls_consensus(&embeddings, spec.rank, &options)?;
        let mut memory = MemoryModel::new();
        memory.add_matrix("consensus", n, embedding.cols());
        Ok(Box::new(ConsensusModel {
            name: "SSMVD",
            embedding,
            fingerprints: views.iter().map(fingerprint).collect(),
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        load_consensus("SSMVD", state)
    }
}
