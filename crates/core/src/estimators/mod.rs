//! [`crate::MultiViewEstimator`] implementations for TCCA, KTCCA and every baseline.
//!
//! Each estimator is a thin, stateless adapter: `fit` validates the inputs, delegates
//! to the underlying method crate (`tcca`, `baselines`), records the method's
//! allocation model and wraps the fitted state in a [`crate::MultiViewModel`]. The
//! method crates keep their inherent APIs; these adapters are what the
//! [`crate::EstimatorRegistry`] hands out.

mod consensus;
mod feature;
mod kernel;
mod linear;

pub use consensus::{DseConsensus, SsmvdConsensus};
pub use feature::{bsf_model_from_parts, cat_model_from_parts, AvgKernel, Bsf, Bsk, Cat};
pub use kernel::{KtccaEstimator, PairwiseKccaEstimator};
pub use linear::{
    cca_maxvar_model_from_parts, pairwise_cca_model_from_parts, pca_model_from_parts,
    tcca_model_from_parts, CcaLsEstimator, CcaMaxVarEstimator, PairwiseCcaEstimator, PcaEstimator,
    TccaEstimator,
};
pub(crate) use linear::{load_pca, save_pca};

use crate::Pipeline;

/// The paper's DSE: per-view PCA pre-reduction (to `spec.effective_per_view_dim()`
/// components) followed by the spectral consensus, expressed as a [`Pipeline`].
pub fn dse_pipeline() -> Pipeline {
    Pipeline::builder()
        .standardize()
        .pca()
        .build(Box::new(DseConsensus))
}

/// The paper's SSMVD: per-view PCA pre-reduction followed by the IRLS group-sparse
/// consensus, expressed as a [`Pipeline`].
pub fn ssmvd_pipeline() -> Pipeline {
    Pipeline::builder()
        .standardize()
        .pca()
        .build(Box::new(SsmvdConsensus))
}
