//! Kernel-method estimators: pairwise KCCA and the paper's KTCCA.
//!
//! These expect per-view **centered** `N × N` Gram matrices as their inputs
//! ([`crate::InputKind::Kernels`]); at transform time they accept `M × N` kernel
//! blocks between query instances and the training instances.

use crate::model::check_square_kernels;
use crate::{
    CombineRule, CoreError, FitSpec, InputKind, MemoryModel, ModelState, MultiViewEstimator,
    MultiViewModel, Output, Result,
};
use baselines::{Kcca, PairwiseKcca};
use linalg::Matrix;
use tcca::Ktcca;

/// Kernel CCA fitted on every pair of view kernels — "KCCA (BST)" / "KCCA (AVG)".
#[derive(Debug, Clone, Copy)]
pub struct PairwiseKccaEstimator {
    rule: CombineRule,
}

impl PairwiseKccaEstimator {
    /// The "KCCA (BST)" variant: keep the best pair on validation data.
    pub fn best() -> Self {
        Self {
            rule: CombineRule::SelectBest,
        }
    }

    /// The "KCCA (AVG)" variant: combine the predictions of all pairs.
    pub fn average() -> Self {
        Self {
            rule: CombineRule::Average,
        }
    }
}

impl MultiViewEstimator for PairwiseKccaEstimator {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "KCCA (BST)",
            CombineRule::Average => "KCCA (AVG)",
        }
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn fit(&self, kernels: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_square_kernels(kernels)?;
        let inner = PairwiseKcca::fit(kernels, spec.rank, spec.epsilon)?;
        let mut memory = MemoryModel::new();
        for p in 0..kernels.len() {
            memory.add_matrix(format!("kernel {p}"), n, n);
        }
        let mut dim = 0;
        for (index, _) in inner.pairs().iter().enumerate() {
            let pair_dim = 2 * inner.models()[index].coefficients()[0].cols();
            memory.add_matrix("dual coefficients", n, pair_dim);
            dim += pair_dim;
        }
        Ok(Box::new(PairwiseKccaModel {
            rule: self.rule,
            num_views: kernels.len(),
            inner,
            dim,
            memory,
        }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let num_views = state.index("num_views")?;
        let pairs = state.index("pairs/len")?;
        let mut models = Vec::with_capacity(pairs);
        for i in 0..pairs {
            models.push(Kcca::from_parts(
                [
                    state.matrix(&format!("pairs/{i}/coeff0"))?.clone(),
                    state.matrix(&format!("pairs/{i}/coeff1"))?.clone(),
                ],
                state.vector(&format!("pairs/{i}/correlations"))?.to_vec(),
            )?);
        }
        Ok(Box::new(PairwiseKccaModel {
            rule: self.rule,
            num_views,
            inner: PairwiseKcca::from_models(num_views, models)?,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

struct PairwiseKccaModel {
    rule: CombineRule,
    num_views: usize,
    inner: PairwiseKcca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for PairwiseKccaModel {
    fn name(&self) -> &str {
        match self.rule {
            CombineRule::SelectBest => "KCCA (BST)",
            CombineRule::Average => "KCCA (AVG)",
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, kernels: &[Matrix]) -> Result<Matrix> {
        let mut out: Option<Matrix> = None;
        for z in self.inner.transform_all(kernels)? {
            out = Some(match out {
                None => z,
                Some(acc) => acc.hstack(&z)?,
            });
        }
        out.ok_or_else(|| CoreError::InvalidInput("pairwise KCCA fitted on no pairs".into()))
    }

    fn transform_view(&self, _which: usize, _kernel: &Matrix) -> Result<Matrix> {
        Err(CoreError::InvalidInput(
            "pairwise KCCA defines projections per kernel pair, not per view; use outputs()".into(),
        ))
    }

    fn outputs(&self, kernels: &[Matrix]) -> Result<Vec<Output>> {
        Ok(self
            .inner
            .transform_all(kernels)?
            .into_iter()
            .map(Output::Embedding)
            .collect())
    }

    fn output_labels(&self) -> Vec<String> {
        self.inner
            .pairs()
            .iter()
            .map(|(p, q)| format!("pair({p},{q})"))
            .collect()
    }

    fn combine(&self) -> CombineRule {
        self.rule
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.num_views
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("num_views", self.num_views as u64);
        state.put_int("dim", self.dim as u64);
        state.put_int("pairs/len", self.inner.models().len() as u64);
        for (i, kcca) in self.inner.models().iter().enumerate() {
            state.put_matrix(format!("pairs/{i}/coeff0"), &kcca.coefficients()[0]);
            state.put_matrix(format!("pairs/{i}/coeff1"), &kcca.coefficients()[1]);
            state.put_vector(format!("pairs/{i}/correlations"), kcca.correlations());
        }
        state.put_memory(&self.memory);
        Ok(state)
    }
}

/// KTCCA — the paper's kernel tensor CCA.
#[derive(Debug, Clone, Copy, Default)]
pub struct KtccaEstimator;

impl MultiViewEstimator for KtccaEstimator {
    fn name(&self) -> &str {
        "KTCCA"
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn fit(&self, kernels: &[Matrix], spec: &FitSpec) -> Result<Box<dyn MultiViewModel>> {
        let n = check_square_kernels(kernels)?;
        let m = kernels.len();
        let mut memory = MemoryModel::new();
        for p in 0..m {
            memory.add_matrix(format!("kernel {p}"), n, n);
        }
        // `WhitenSpec::Randomized` selects the seeded Nyström landmark
        // factorization: the O(Nᵐ) whitened Gram tensor shrinks to the landmark
        // dimension while the fitted model keeps the exact-path shape (N × r dual
        // coefficients), so transform and persistence are identical. `Exact` (and
        // `None`) keep the full Cholesky path — it *is* the exact whitening.
        let inner = if spec.whiten.randomized_budget().is_some() {
            let landmarks = spec.effective_per_view_dim().min(n);
            memory.add_tensor("gram tensor", &vec![landmarks; m]);
            Ktcca::fit_nystrom(kernels, &spec.tcca_options(), landmarks)?
        } else {
            memory.add_tensor("gram tensor", &vec![n; m]);
            Ktcca::fit(kernels, &spec.tcca_options())?
        };
        let dim: usize = inner.coefficients().iter().map(Matrix::cols).sum();
        memory.add_matrix("dual coefficients", n, dim);
        Ok(Box::new(KtccaModel { inner, dim, memory }))
    }

    fn load_state(&self, state: &ModelState) -> Result<Box<dyn MultiViewModel>> {
        let inner = Ktcca::from_parts(
            state.matrices("coefficients")?,
            state.vector("correlations")?.to_vec(),
            state.index("n_train")?,
        )?;
        Ok(Box::new(KtccaModel {
            inner,
            dim: state.index("dim")?,
            memory: state.memory()?,
        }))
    }
}

struct KtccaModel {
    inner: Ktcca,
    dim: usize,
    memory: MemoryModel,
}

impl MultiViewModel for KtccaModel {
    fn name(&self) -> &str {
        "KTCCA"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn transform(&self, kernel_blocks: &[Matrix]) -> Result<Matrix> {
        Ok(self.inner.transform(kernel_blocks)?)
    }

    fn transform_view(&self, which: usize, kernel_block: &Matrix) -> Result<Matrix> {
        Ok(self.inner.transform_view(which, kernel_block)?)
    }

    fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    fn num_views(&self) -> usize {
        self.inner.coefficients().len()
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Kernels
    }

    fn save_state(&self) -> Result<ModelState> {
        let mut state = ModelState::new();
        state.put_int("dim", self.dim as u64);
        state.put_int("n_train", self.inner.num_train() as u64);
        state.put_matrices("coefficients", self.inner.coefficients());
        state.put_vector("correlations", self.inner.correlations());
        state.put_memory(&self.memory);
        Ok(state)
    }
}
