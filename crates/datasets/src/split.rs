//! Train/test splitting and labeled-subset sampling.
//!
//! The paper's protocol: split off a test set (web image annotation) or work
//! transductively on the unlabeled pool (SecStr, Ads); draw five random labeled subsets
//! (either a fixed count, or a fixed count per class); and reserve 20% of the
//! test/unlabeled data as a validation set for choosing the subspace dimension and
//! regularization parameters.

use crate::rng::GaussianRng;

/// A partition of instance indices into two groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices in the first group (train / labeled / validation depending on context).
    pub first: Vec<usize>,
    /// Indices in the second group.
    pub second: Vec<usize>,
}

/// Randomly split `n` instances so that the first group has `round(n * first_fraction)`
/// elements.
pub fn train_test_split(n: usize, first_fraction: f64, seed: u64) -> Split {
    let mut rng = GaussianRng::new(seed);
    let perm = rng.permutation(n);
    let n_first = ((n as f64) * first_fraction.clamp(0.0, 1.0)).round() as usize;
    Split {
        first: perm[..n_first.min(n)].to_vec(),
        second: perm[n_first.min(n)..].to_vec(),
    }
}

/// Sample `n_labeled` instances uniformly at random from `pool` (without replacement);
/// returns `(labeled, rest)`.
pub fn labeled_subset(pool: &[usize], n_labeled: usize, seed: u64) -> Split {
    let mut rng = GaussianRng::new(seed);
    let perm = rng.permutation(pool.len());
    let k = n_labeled.min(pool.len());
    Split {
        first: perm[..k].iter().map(|&i| pool[i]).collect(),
        second: perm[k..].iter().map(|&i| pool[i]).collect(),
    }
}

/// Sample `per_class` labeled instances from every class (paper's NUS-WIDE protocol);
/// returns `(labeled, rest)` where `rest` preserves the pool order.
pub fn labeled_subset_per_class(
    pool: &[usize],
    labels: &[usize],
    n_classes: usize,
    per_class: usize,
    seed: u64,
) -> Split {
    let mut rng = GaussianRng::new(seed);
    let mut chosen = Vec::with_capacity(per_class * n_classes);
    for class in 0..n_classes {
        let members: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&i| labels[i] == class)
            .collect();
        let perm = rng.permutation(members.len());
        for &idx in perm.iter().take(per_class) {
            chosen.push(members[idx]);
        }
    }
    let chosen_set: std::collections::HashSet<usize> = chosen.iter().copied().collect();
    let rest = pool
        .iter()
        .copied()
        .filter(|i| !chosen_set.contains(i))
        .collect();
    Split {
        first: chosen,
        second: rest,
    }
}

/// Reserve `fraction` of the given pool as a validation set (paper uses 20% of the
/// test/unlabeled data); returns `(validation, remainder)`.
pub fn validation_split(pool: &[usize], fraction: f64, seed: u64) -> Split {
    let mut rng = GaussianRng::new(seed);
    let perm = rng.permutation(pool.len());
    let k = ((pool.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
    Split {
        first: perm[..k.min(pool.len())].iter().map(|&i| pool[i]).collect(),
        second: perm[k.min(pool.len())..].iter().map(|&i| pool[i]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_test_split_partitions() {
        let split = train_test_split(100, 0.3, 1);
        assert_eq!(split.first.len(), 30);
        assert_eq!(split.second.len(), 70);
        let mut all: Vec<usize> = split
            .first
            .iter()
            .chain(split.second.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn labeled_subset_respects_pool() {
        let pool: Vec<usize> = (10..30).collect();
        let split = labeled_subset(&pool, 5, 2);
        assert_eq!(split.first.len(), 5);
        assert_eq!(split.second.len(), 15);
        for &i in split.first.iter().chain(split.second.iter()) {
            assert!(pool.contains(&i));
        }
        // Requesting more than available returns everything.
        let all = labeled_subset(&pool, 100, 2);
        assert_eq!(all.first.len(), 20);
        assert!(all.second.is_empty());
    }

    #[test]
    fn per_class_sampling_balances_classes() {
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let pool: Vec<usize> = (0..60).collect();
        let split = labeled_subset_per_class(&pool, &labels, 3, 4, 7);
        assert_eq!(split.first.len(), 12);
        let mut counts = [0usize; 3];
        for &i in &split.first {
            counts[labels[i]] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
        assert_eq!(split.first.len() + split.second.len(), 60);
    }

    #[test]
    fn validation_split_fraction() {
        let pool: Vec<usize> = (0..50).collect();
        let split = validation_split(&pool, 0.2, 3);
        assert_eq!(split.first.len(), 10);
        assert_eq!(split.second.len(), 40);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(train_test_split(40, 0.5, 9), train_test_split(40, 0.5, 9));
        assert_ne!(train_test_split(40, 0.5, 9), train_test_split(40, 0.5, 10));
    }
}
