//! Kernels, Gram matrices and kernel centering for the non-linear experiments.
//!
//! The paper's KTCCA evaluation (Fig. 6, Table 4) builds one kernel per view via
//! `k(x_i, x_j) = exp(−d(x_i, x_j) / λ)` with `λ = max_{i,j} d(x_i, x_j)`, using the χ²
//! distance for the visual-word histogram view and the L2 (Euclidean) distance for the
//! other views. This module provides those kernels, the linear kernel (used to check
//! that KTCCA with a linear kernel matches linear TCCA), Gram-matrix construction for
//! `d × N` view matrices and the usual double-centering.

use linalg::Matrix;

/// Kernel functions between instance columns of a `d × N` view matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Plain inner product `xᵀy`.
    Linear,
    /// `exp(−‖x − y‖₂² / (2σ²))`.
    Rbf {
        /// Bandwidth σ.
        sigma: f64,
    },
    /// The paper's distance-based kernel `exp(−d(x, y)/λ)` with the **Euclidean**
    /// distance and `λ = max d` estimated from the data.
    ExpEuclidean,
    /// The paper's distance-based kernel with the **χ²** distance
    /// `d(x, y) = Σ_i (x_i − y_i)² / (x_i + y_i)` and `λ = max d` estimated from data.
    ExpChiSquare,
}

/// Squared Euclidean distance between two feature vectors.
pub fn euclidean_distance(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// χ² distance between two non-negative feature vectors (histograms).
pub fn chi_square_distance(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| {
            let denom = a + b;
            if denom > 1e-12 {
                (a - b) * (a - b) / denom
            } else {
                0.0
            }
        })
        .sum()
}

/// Build the `N × N` Gram matrix of a `d × N` view under the given kernel.
pub fn gram_matrix(view: &Matrix, kernel: Kernel) -> Matrix {
    let n = view.cols();
    let columns: Vec<Vec<f64>> = (0..n).map(|j| view.column(j)).collect();
    match kernel {
        Kernel::Linear => {
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v = linalg::dot(&columns[i], &columns[j]);
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
            }
            k
        }
        Kernel::Rbf { sigma } => {
            let gamma = 1.0 / (2.0 * sigma * sigma);
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let d = euclidean_distance(&columns[i], &columns[j]);
                    let v = (-gamma * d * d).exp();
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
            }
            k
        }
        Kernel::ExpEuclidean => kernel_from_distance(&columns, euclidean_distance),
        Kernel::ExpChiSquare => kernel_from_distance(&columns, chi_square_distance),
    }
}

/// Build the paper's `exp(−d/λ)` kernel from an arbitrary distance function, with
/// `λ = max_{i,j} d(x_i, x_j)` estimated from the data (λ falls back to 1 when all
/// distances are zero).
pub fn kernel_from_distance<F>(columns: &[Vec<f64>], distance: F) -> Matrix
where
    F: Fn(&[f64], &[f64]) -> f64,
{
    let n = columns.len();
    let mut dists = Matrix::zeros(n, n);
    let mut max_d: f64 = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance(&columns[i], &columns[j]);
            dists[(i, j)] = d;
            dists[(j, i)] = d;
            max_d = max_d.max(d);
        }
    }
    let lambda = if max_d > 1e-12 { max_d } else { 1.0 };
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            k[(i, j)] = (-dists[(i, j)] / lambda).exp();
        }
    }
    k
}

/// Double-center a Gram matrix: `K ← H K H` with `H = I − (1/N) 11ᵀ`.
///
/// Centering in feature space is the kernel analogue of subtracting the view means,
/// which the linear formulation assumes (paper §4.2).
pub fn center_kernel(k: &Matrix) -> Matrix {
    let n = k.rows();
    if n == 0 {
        return k.clone();
    }
    let row_means: Vec<f64> = (0..n)
        .map(|i| k.row(i).iter().sum::<f64>() / n as f64)
        .collect();
    let grand_mean: f64 = row_means.iter().sum::<f64>() / n as f64;
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = k[(i, j)] - row_means[i] - row_means[j] + grand_mean;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::SymmetricEigen;

    fn toy_view() -> Matrix {
        Matrix::from_rows(&[
            vec![0.1, 0.4, 0.2, 0.9],
            vec![0.5, 0.1, 0.3, 0.05],
            vec![0.4, 0.5, 0.5, 0.05],
        ])
        .unwrap()
    }

    #[test]
    fn distances_basic_properties() {
        let x = [1.0, 0.0, 2.0];
        let y = [0.0, 1.0, 2.0];
        assert_eq!(euclidean_distance(&x, &x), 0.0);
        assert!((euclidean_distance(&x, &y) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(chi_square_distance(&x, &x), 0.0);
        assert!(chi_square_distance(&x, &y) > 0.0);
        // Symmetry.
        assert_eq!(chi_square_distance(&x, &y), chi_square_distance(&y, &x));
        // Zero denominators are skipped.
        assert_eq!(chi_square_distance(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn linear_gram_matches_inner_products() {
        let v = toy_view();
        let k = gram_matrix(&v, Kernel::Linear);
        assert_eq!(k.shape(), (4, 4));
        let expected = v.t_matmul(&v).unwrap();
        assert!(k.sub(&expected).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn exponential_kernels_have_unit_diagonal_and_are_psd() {
        let v = toy_view();
        for kern in [
            Kernel::ExpEuclidean,
            Kernel::ExpChiSquare,
            Kernel::Rbf { sigma: 0.5 },
        ] {
            let k = gram_matrix(&v, kern);
            for i in 0..4 {
                assert!((k[(i, i)] - 1.0).abs() < 1e-12);
                for j in 0..4 {
                    assert!(k[(i, j)] > 0.0 && k[(i, j)] <= 1.0 + 1e-12);
                    assert!((k[(i, j)] - k[(j, i)]).abs() < 1e-12);
                }
            }
            // The exp(-d/λ) family is positive definite for these small examples.
            let eig = SymmetricEigen::new(&k).unwrap();
            for &l in &eig.eigenvalues {
                assert!(l > -1e-9, "kernel {kern:?} has negative eigenvalue {l}");
            }
        }
    }

    #[test]
    fn centering_zeroes_row_and_column_sums() {
        let v = toy_view();
        let k = gram_matrix(&v, Kernel::ExpEuclidean);
        let kc = center_kernel(&k);
        for i in 0..4 {
            let row_sum: f64 = kc.row(i).iter().sum();
            assert!(row_sum.abs() < 1e-9);
            let col_sum: f64 = kc.column(i).iter().sum();
            assert!(col_sum.abs() < 1e-9);
        }
        // Centering an empty kernel is a no-op.
        let empty = Matrix::zeros(0, 0);
        assert_eq!(center_kernel(&empty).shape(), (0, 0));
    }

    #[test]
    fn degenerate_identical_columns_fall_back_to_lambda_one() {
        let v = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let k = gram_matrix(&v, Kernel::ExpEuclidean);
        // All distances are zero so every entry is exp(0) = 1.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(k[(i, j)], 1.0);
            }
        }
    }
}
