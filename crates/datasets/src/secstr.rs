//! SecStr-like biometric (protein secondary structure) dataset stand-in.
//!
//! The real SecStr benchmark (Chapelle et al. 2006) predicts the secondary structure of
//! an amino acid from a 15-position sequence window, each position encoded as a
//! 21-dimensional sparse binary indicator; the paper splits the 315 features into three
//! contextual views of 105 dimensions each (left context, centre, right context) and
//! evaluates with 100 labeled instances, 84K (or 1.3M) unlabeled instances and a
//! transductive RLS protocol.
//!
//! The stand-in keeps the structure: two classes, three sparse binary views of 105
//! dimensions, a labeled set that is tiny relative to the unlabeled pool, and a shared
//! latent code whose per-view coverage is partial (each context window alone is a weak
//! predictor; the three together are strong).

use crate::synth::{LatentMultiViewConfig, ViewNonlinearity, ViewSpec};
use crate::MultiViewDataset;

/// Configuration for the SecStr-like generator.
#[derive(Debug, Clone)]
pub struct SecStrConfig {
    /// Total number of instances (labeled + unlabeled pool).
    pub n_instances: usize,
    /// RNG seed.
    pub seed: u64,
    /// Latent-code noise; larger values make the task harder.
    pub difficulty: f64,
}

impl Default for SecStrConfig {
    fn default() -> Self {
        Self {
            n_instances: 8_400,
            seed: 17,
            difficulty: 0.9,
        }
    }
}

/// Generate a SecStr-like dataset: 2 classes, three 105-dimensional binary views.
pub fn secstr_dataset(config: &SecStrConfig) -> MultiViewDataset {
    let view = |seedless_coverage: f64| ViewSpec {
        dimension: 105,
        private_factors: 8,
        noise: 0.7,
        nonlinearity: ViewNonlinearity::Binary,
        shared_coverage: seedless_coverage,
    };
    LatentMultiViewConfig {
        n_instances: config.n_instances,
        n_classes: 2,
        // The real SecStr task ("is this residue a helix?") is unbalanced; the skewed
        // class prior plus skewed latent noise is what makes the third-order signal
        // TCCA exploits non-zero (see DESIGN.md §4).
        class_proportions: Some(vec![0.42, 0.58]),
        latent_dim: 10,
        latent_noise: config.difficulty,
        latent_skewness: 1.2,
        class_separation: 0.9,
        // Strong pairwise-only correlations (neighbouring context windows share sequence
        // content regardless of the secondary structure) — the structure pairwise CCA
        // latches onto and the order-3 tensor filters out.
        pairwise_nuisance: 2.2,
        views: vec![view(0.55), view(0.75), view(0.55)],
        seed: config.seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shapes_match_paper_views() {
        let d = secstr_dataset(&SecStrConfig {
            n_instances: 300,
            ..SecStrConfig::default()
        });
        assert_eq!(d.num_views(), 3);
        assert_eq!(d.dimensions(), vec![105, 105, 105]);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.len(), 300);
    }

    #[test]
    fn views_are_binary() {
        let d = secstr_dataset(&SecStrConfig {
            n_instances: 50,
            ..SecStrConfig::default()
        });
        for p in 0..3 {
            let v = d.view(p);
            for i in 0..v.rows() {
                for j in 0..v.cols() {
                    assert!(v[(i, j)] == 0.0 || v[(i, j)] == 1.0);
                }
            }
        }
    }

    #[test]
    fn reproducible() {
        let cfg = SecStrConfig {
            n_instances: 40,
            ..SecStrConfig::default()
        };
        assert_eq!(secstr_dataset(&cfg).view(0), secstr_dataset(&cfg).view(0));
    }
}
