//! The shared latent-factor multi-view generator.
//!
//! All three dataset stand-ins (SecStr, Ads, NUS-WIDE) are instances of the same
//! generative model:
//!
//! ```text
//! class   y_n ~ Categorical(n_classes)
//! latent  t_n = μ_{y_n} + σ_t · ε_n,              t_n ∈ R^k   (shared across views)
//! private s_pn ~ N(0, I) ∈ R^{k_p}                            (view-specific nuisance)
//! view p  x_pn = g_p(A_p t_n + B_p s_pn + σ_p · noise)        (d_p-dimensional)
//! ```
//!
//! where `g_p` is an optional non-linearity (identity, quadratic+softplus "histogram",
//! or thresholding to sparse binary features). Because the class signal lives in the
//! shared latent code, (a) a common subspace recovered from *unlabeled* data carries the
//! discriminative information, (b) the quality of that subspace improves with more
//! unlabeled data, and (c) signal observable only by combining all views (the high-order
//! correlation the paper targets) is present whenever more than two loading matrices
//! overlap on the same latent coordinates.

use crate::rng::GaussianRng;
use crate::MultiViewDataset;
use linalg::Matrix;

/// How a view's linear responses are turned into observed features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewNonlinearity {
    /// Observed features are the (noisy) linear responses themselves.
    Linear,
    /// Sparse binary features: a response is 1 when it exceeds a per-feature threshold.
    /// Emulates the bag-of-words / categorical indicator views of SecStr and Ads.
    Binary,
    /// Non-negative histogram-like features via a softplus of a quadratic expansion.
    /// Emulates visual bag-of-words / correlogram / wavelet histograms in NUS-WIDE, and
    /// gives the χ² kernel something meaningful to act on.
    Histogram,
}

/// Specification of a single view.
#[derive(Debug, Clone)]
pub struct ViewSpec {
    /// Observed feature dimension `d_p`.
    pub dimension: usize,
    /// Number of view-private nuisance factors.
    pub private_factors: usize,
    /// Standard deviation of the additive observation noise.
    pub noise: f64,
    /// Output non-linearity.
    pub nonlinearity: ViewNonlinearity,
    /// Fraction of the shared latent coordinates this view actually observes (0..=1).
    /// Lower values make single-view learning harder while joint learning still works.
    pub shared_coverage: f64,
}

impl ViewSpec {
    /// A linear view with sensible defaults.
    pub fn linear(dimension: usize) -> Self {
        Self {
            dimension,
            private_factors: 4,
            noise: 0.5,
            nonlinearity: ViewNonlinearity::Linear,
            shared_coverage: 1.0,
        }
    }

    /// A sparse binary view (bag-of-words / categorical indicators).
    pub fn binary(dimension: usize) -> Self {
        Self {
            dimension,
            private_factors: 6,
            noise: 0.6,
            nonlinearity: ViewNonlinearity::Binary,
            shared_coverage: 1.0,
        }
    }

    /// A non-negative histogram view (visual descriptors).
    pub fn histogram(dimension: usize) -> Self {
        Self {
            dimension,
            private_factors: 5,
            noise: 0.4,
            nonlinearity: ViewNonlinearity::Histogram,
            shared_coverage: 1.0,
        }
    }
}

/// Configuration of the latent-factor multi-view generator.
#[derive(Debug, Clone)]
pub struct LatentMultiViewConfig {
    /// Number of instances to generate.
    pub n_instances: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Class prior probabilities. `None` means balanced (round-robin) classes.
    ///
    /// TCCA's objective is a **third-order** cross-moment: a centered two-point mixture
    /// with equal masses is symmetric and therefore invisible to it, so two-class
    /// datasets should use the (realistic) unbalanced priors of the originals — e.g.
    /// only ~14% of the UCI Ads instances are advertisements.
    pub class_proportions: Option<Vec<f64>>,
    /// Dimension of the shared latent code `t`.
    pub latent_dim: usize,
    /// Standard deviation of the latent code around its class mean.
    pub latent_noise: f64,
    /// Skewness of the within-class latent noise (0 = Gaussian). Real bag-of-words /
    /// histogram features are strongly right-skewed, which is precisely what gives the
    /// covariance tensor its high-order signal; a value around 1 reproduces that.
    pub latent_skewness: f64,
    /// Separation between class means in latent space.
    pub class_separation: f64,
    /// Strength of **pairwise nuisance factors**: latent variables shared by exactly two
    /// views and carrying no class information. This reproduces the situation of the
    /// paper's Fig. 1 — pairwise CCA methods latch onto correlations that exist between
    /// pairs of views, while the order-3 covariance tensor suppresses any structure that
    /// is not present in *all* views simultaneously. Set to 0 to disable.
    pub pairwise_nuisance: f64,
    /// Per-view specifications.
    pub views: Vec<ViewSpec>,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl LatentMultiViewConfig {
    /// Generate the dataset described by this configuration.
    pub fn generate(&self) -> MultiViewDataset {
        assert!(self.n_classes >= 1, "need at least one class");
        assert!(!self.views.is_empty(), "need at least one view");
        assert!(self.latent_dim >= 1, "latent dimension must be positive");

        let mut rng = GaussianRng::new(self.seed);
        let n = self.n_instances;
        let k = self.latent_dim;

        // Class means in latent space: random directions scaled by the separation.
        let mut class_means = Vec::with_capacity(self.n_classes);
        for _ in 0..self.n_classes {
            let mut mu: Vec<f64> = (0..k).map(|_| rng.standard_normal()).collect();
            let norm = mu.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            for v in &mut mu {
                *v *= self.class_separation / norm;
            }
            class_means.push(mu);
        }

        // Labels: proportional assignment (deterministic counts), then shuffled —
        // or balanced round-robin when no proportions are given.
        let perm = rng.permutation(n);
        let mut labels = vec![0usize; n];
        match &self.class_proportions {
            None => {
                for (slot, &idx) in perm.iter().enumerate() {
                    labels[idx] = slot % self.n_classes;
                }
            }
            Some(props) => {
                assert_eq!(
                    props.len(),
                    self.n_classes,
                    "class_proportions length must equal n_classes"
                );
                let total: f64 = props.iter().sum();
                // Cumulative targets guarantee counts add up to n.
                let mut slot_class = Vec::with_capacity(n);
                let mut cumulative = 0.0;
                let mut assigned = 0usize;
                for (c, &p) in props.iter().enumerate() {
                    cumulative += p / total;
                    let target = if c + 1 == props.len() {
                        n
                    } else {
                        (cumulative * n as f64).round() as usize
                    };
                    for _ in assigned..target {
                        slot_class.push(c);
                    }
                    assigned = target.max(assigned);
                }
                while slot_class.len() < n {
                    slot_class.push(self.n_classes - 1);
                }
                for (slot, &idx) in perm.iter().enumerate() {
                    labels[idx] = slot_class[slot];
                }
            }
        }

        // Shared latent codes with optionally skewed within-class noise.
        let mut latent = Matrix::zeros(k, n);
        for (i, &label) in labels.iter().enumerate() {
            for j in 0..k {
                latent[(j, i)] =
                    class_means[label][j] + self.latent_noise * self.skewed_noise(&mut rng);
            }
        }

        // Pairwise nuisance latents: for every unordered pair of views, a small set of
        // zero-mean factors shared by exactly those two views.
        let nuisance_dim = 8usize;
        let mut pair_nuisance: Vec<((usize, usize), Matrix)> = Vec::new();
        if self.pairwise_nuisance > 0.0 {
            for p in 0..self.views.len() {
                for q in (p + 1)..self.views.len() {
                    let mut s = Matrix::zeros(nuisance_dim, n);
                    for i in 0..nuisance_dim {
                        for j in 0..n {
                            s[(i, j)] = rng.standard_normal();
                        }
                    }
                    pair_nuisance.push(((p, q), s));
                }
            }
        }

        // Per-view observation models.
        let mut views = Vec::with_capacity(self.views.len());
        for (p, spec) in self.views.iter().enumerate() {
            let relevant: Vec<&Matrix> = pair_nuisance
                .iter()
                .filter(|((a, b), _)| *a == p || *b == p)
                .map(|(_, s)| s)
                .collect();
            views.push(self.generate_view(spec, &latent, &relevant, &mut rng));
        }

        MultiViewDataset::new(views, labels, self.n_classes)
    }

    /// A zero-mean, unit-ish-scale noise sample whose skewness is controlled by
    /// `latent_skewness` (0 gives a plain standard normal).
    fn skewed_noise(&self, rng: &mut GaussianRng) -> f64 {
        let z = rng.standard_normal();
        if self.latent_skewness == 0.0 {
            return z;
        }
        // A scaled log-normal shifted to zero mean: exp(s·z) has mean exp(s²/2).
        let s = 0.6 * self.latent_skewness;
        let raw = (s * z).exp() - (s * s / 2.0).exp();
        // Normalize to roughly unit standard deviation so `latent_noise` keeps meaning.
        let var = ((s * s).exp() - 1.0) * (s * s).exp();
        raw / var.sqrt().max(1e-6)
    }

    fn generate_view(
        &self,
        spec: &ViewSpec,
        latent: &Matrix,
        pair_nuisance: &[&Matrix],
        rng: &mut GaussianRng,
    ) -> Matrix {
        let k = self.latent_dim;
        let n = self.n_instances;
        let d = spec.dimension;
        let coverage = spec.shared_coverage.clamp(0.0, 1.0);
        let observed_latents = ((k as f64 * coverage).round() as usize).clamp(1, k);

        // Loading matrix A_p: d × k, only the first `observed_latents` latent coordinates
        // receive non-zero loadings.
        let mut loading = Matrix::zeros(d, k);
        for i in 0..d {
            for j in 0..observed_latents {
                loading[(i, j)] = rng.standard_normal() / (observed_latents as f64).sqrt();
            }
        }
        // Private factor loadings B_p: d × k_p.
        let kp = spec.private_factors;
        let mut private_loading = Matrix::zeros(d, kp.max(1));
        for i in 0..d {
            for j in 0..kp {
                private_loading[(i, j)] = rng.standard_normal() / (kp.max(1) as f64).sqrt();
            }
        }

        // Responses = A_p * T + B_p * S + noise.
        let mut responses = loading.matmul(latent).expect("shapes agree");
        if kp > 0 {
            let mut private = Matrix::zeros(kp, n);
            for i in 0..kp {
                for j in 0..n {
                    private[(i, j)] = rng.standard_normal();
                }
            }
            let contribution = private_loading.matmul(&private).expect("shapes agree");
            responses = responses.add(&contribution).expect("shapes agree");
        }
        // Pairwise nuisance contributions: correlations this view shares with exactly
        // one other view, invisible to the order-3 covariance tensor.
        for s in pair_nuisance {
            let kn = s.rows();
            let mut loading = Matrix::zeros(d, kn);
            for i in 0..d {
                for j in 0..kn {
                    loading[(i, j)] =
                        self.pairwise_nuisance * rng.standard_normal() / (kn as f64).sqrt();
                }
            }
            let contribution = loading.matmul(s).expect("shapes agree");
            responses = responses.add(&contribution).expect("shapes agree");
        }
        for i in 0..d {
            for j in 0..n {
                responses[(i, j)] += spec.noise * rng.standard_normal();
            }
        }

        match spec.nonlinearity {
            ViewNonlinearity::Linear => responses,
            ViewNonlinearity::Binary => {
                // Per-feature threshold set so that roughly 20-35% of entries fire, which
                // matches the sparsity of indicator/bag-of-words features.
                let mut out = Matrix::zeros(d, n);
                for i in 0..d {
                    let threshold = 0.4 + 0.4 * rng.uniform(0.0, 1.0);
                    for j in 0..n {
                        out[(i, j)] = if responses[(i, j)] > threshold {
                            1.0
                        } else {
                            0.0
                        };
                    }
                }
                out
            }
            ViewNonlinearity::Histogram => {
                // Softplus of a mild quadratic expansion, then L1-normalize each instance
                // so columns look like histograms.
                let mut out = Matrix::zeros(d, n);
                for j in 0..n {
                    let mut col_sum = 0.0;
                    for i in 0..d {
                        let r = responses[(i, j)];
                        let v = softplus(r + 0.3 * r * r);
                        out[(i, j)] = v;
                        col_sum += v;
                    }
                    if col_sum > 1e-12 {
                        for i in 0..d {
                            out[(i, j)] /= col_sum;
                        }
                    }
                }
                out
            }
        }
    }
}

fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LatentMultiViewConfig {
        LatentMultiViewConfig {
            n_instances: 60,
            n_classes: 3,
            class_proportions: None,
            latent_dim: 4,
            latent_noise: 0.3,
            latent_skewness: 0.0,
            class_separation: 2.0,
            pairwise_nuisance: 0.0,
            views: vec![
                ViewSpec::linear(10),
                ViewSpec::binary(12),
                ViewSpec::histogram(8),
            ],
            seed: 123,
        }
    }

    #[test]
    fn generates_requested_shapes() {
        let d = small_config().generate();
        assert_eq!(d.len(), 60);
        assert_eq!(d.num_views(), 3);
        assert_eq!(d.dimensions(), vec![10, 12, 8]);
        assert_eq!(d.num_classes(), 3);
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let d = small_config().generate();
        let counts = d.class_counts();
        for &c in &counts {
            assert!(c == 20, "counts {counts:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.view(0), b.view(0));
        assert_eq!(a.labels(), b.labels());
        let mut other = small_config();
        other.seed = 999;
        let c = other.generate();
        assert_ne!(a.view(0), c.view(0));
    }

    #[test]
    fn binary_view_is_binary_and_sparse() {
        let d = small_config().generate();
        let v = d.view(1);
        let mut ones = 0usize;
        for i in 0..v.rows() {
            for j in 0..v.cols() {
                let x = v[(i, j)];
                assert!(x == 0.0 || x == 1.0);
                if x == 1.0 {
                    ones += 1;
                }
            }
        }
        let density = ones as f64 / (v.rows() * v.cols()) as f64;
        assert!(density > 0.02 && density < 0.7, "density {density}");
    }

    #[test]
    fn histogram_view_is_nonnegative_and_normalized() {
        let d = small_config().generate();
        let v = d.view(2);
        for j in 0..v.cols() {
            let mut sum = 0.0;
            for i in 0..v.rows() {
                assert!(v[(i, j)] >= 0.0);
                sum += v[(i, j)];
            }
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn class_proportions_are_respected() {
        let mut cfg = small_config();
        cfg.n_instances = 200;
        cfg.n_classes = 2;
        cfg.class_proportions = Some(vec![0.2, 0.8]);
        let d = cfg.generate();
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert!((counts[0] as f64 - 40.0).abs() <= 1.0, "counts {counts:?}");
        assert!((counts[1] as f64 - 160.0).abs() <= 1.0, "counts {counts:?}");
    }

    #[test]
    fn skewed_latent_noise_has_positive_skewness_and_roughly_zero_mean() {
        let cfg = LatentMultiViewConfig {
            latent_skewness: 1.0,
            ..small_config()
        };
        let mut rng = GaussianRng::new(77);
        let samples: Vec<f64> = (0..20_000).map(|_| cfg.skewed_noise(&mut rng)).collect();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let skew = samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(skew > 0.5, "skewness {skew}");
        // Zero skewness falls back to the plain normal.
        let plain = small_config();
        let s = plain.skewed_noise(&mut rng);
        assert!(s.is_finite());
    }

    #[test]
    fn shared_signal_is_class_informative() {
        // Nearest-class-mean classification on the *latent-linked* linear view should
        // beat chance comfortably, confirming the planted signal exists.
        let config = LatentMultiViewConfig {
            n_instances: 200,
            latent_noise: 0.2,
            ..small_config()
        };
        let d = config.generate();
        let v = d.view(0);
        let n = d.len();
        // Class means of the first view.
        let mut means = vec![vec![0.0; v.rows()]; d.num_classes()];
        let counts = d.class_counts();
        for j in 0..n {
            let c = d.labels()[j];
            for i in 0..v.rows() {
                means[c][i] += v[(i, j)] / counts[c] as f64;
            }
        }
        let mut correct = 0;
        for j in 0..n {
            let mut best = 0;
            let mut best_dist = f64::INFINITY;
            for (c, mu) in means.iter().enumerate() {
                let dist: f64 = (0..v.rows()).map(|i| (v[(i, j)] - mu[i]).powi(2)).sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            if best == d.labels()[j] {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.6, "in-sample nearest-mean accuracy only {acc}");
    }
}
