//! Small random-sampling helpers (seeded Gaussian draws) built on `rand`.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the Gaussian
//! sampler is a local Box–Muller transform. All generators in this crate are fully
//! deterministic given their seed, which the experiment harness relies on for the
//! "five random choices of the labeled instances" protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator with Gaussian sampling.
#[derive(Debug, Clone)]
pub struct GaussianRng {
    rng: StdRng,
    cached: Option<f64>,
}

impl GaussianRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draw a standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(radius * angle.sin());
        radius * angle.cos()
    }

    /// Draw a normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Draw a uniform sample in `[low, high)`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        self.rng.gen_range(low..high)
    }

    /// Draw a uniform integer in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// Fisher–Yates shuffle of `0..n`, returning the permutation.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        perm
    }

    /// Draw a Bernoulli sample with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianRng::new(5);
        let mut b = GaussianRng::new(5);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = GaussianRng::new(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = GaussianRng::new(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = GaussianRng::new(3);
        let perm = rng.permutation(50);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_and_index_bounds() {
        let mut rng = GaussianRng::new(4);
        for _ in 0..100 {
            let u = rng.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&u));
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = GaussianRng::new(6);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03);
    }
}
