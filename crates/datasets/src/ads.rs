//! Internet-Advertisements-like dataset stand-in.
//!
//! The UCI Ads dataset asks whether a hyperlinked image is an advertisement from
//! binary term-presence features grouped by where the term occurs; the paper uses three
//! views — image URL/caption/alt-text terms (588 dims), current-site URL terms
//! (495 dims) and anchor URL terms (472 dims) — 100 labeled instances out of 3 279, and
//! a transductive RLS protocol. The high total dimensionality (1 555) versus the tiny
//! labeled set is what makes the CAT baseline over-fit in Fig. 4.
//!
//! The stand-in keeps the exact view dimensionalities, two classes, heavy sparsity and
//! the small-N-large-d regime.

use crate::synth::{LatentMultiViewConfig, ViewNonlinearity, ViewSpec};
use crate::MultiViewDataset;

/// Configuration for the Ads-like generator.
#[derive(Debug, Clone)]
pub struct AdsConfig {
    /// Total number of instances.
    pub n_instances: usize,
    /// RNG seed.
    pub seed: u64,
    /// Latent-code noise; larger values make the task harder.
    pub difficulty: f64,
}

impl Default for AdsConfig {
    fn default() -> Self {
        Self {
            n_instances: 3_279,
            seed: 29,
            difficulty: 0.55,
        }
    }
}

/// Generate an Ads-like dataset: 2 classes, binary views of 588/495/472 dimensions.
pub fn ads_dataset(config: &AdsConfig) -> MultiViewDataset {
    let view = |dim: usize, coverage: f64| ViewSpec {
        dimension: dim,
        private_factors: 12,
        noise: 0.8,
        nonlinearity: ViewNonlinearity::Binary,
        shared_coverage: coverage,
    };
    LatentMultiViewConfig {
        n_instances: config.n_instances,
        n_classes: 2,
        // Roughly 14% of the real UCI Ads instances are advertisements.
        class_proportions: Some(vec![0.14, 0.86]),
        latent_dim: 12,
        latent_noise: config.difficulty,
        latent_skewness: 1.0,
        class_separation: 1.5,
        // URL terms co-occur across the site/anchor/caption views independently of the
        // ad label — pairwise structure the order-3 tensor suppresses.
        pairwise_nuisance: 1.2,
        views: vec![view(588, 0.7), view(495, 0.6), view(472, 0.6)],
        seed: config.seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let d = ads_dataset(&AdsConfig {
            n_instances: 120,
            ..AdsConfig::default()
        });
        assert_eq!(d.dimensions(), vec![588, 495, 472]);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.len(), 120);
    }

    #[test]
    fn total_dimension_matches_paper_cat_baseline() {
        let d = ads_dataset(&AdsConfig {
            n_instances: 30,
            ..AdsConfig::default()
        });
        let total: usize = d.dimensions().iter().sum();
        assert_eq!(total, 1_555);
    }

    #[test]
    fn reproducible() {
        let cfg = AdsConfig {
            n_instances: 40,
            ..AdsConfig::default()
        };
        assert_eq!(ads_dataset(&cfg).labels(), ads_dataset(&cfg).labels());
    }
}
