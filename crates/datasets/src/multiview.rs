//! The [`MultiViewDataset`] container shared by all generators and experiments.

use linalg::Matrix;

/// A dataset of `N` instances, each observed through `m` feature views, plus labels.
///
/// Following the paper's notation, view `p` is stored as a `d_p × N` matrix whose
/// columns are instances. Labels are class indices in `0..n_classes`.
#[derive(Debug, Clone)]
pub struct MultiViewDataset {
    views: Vec<Matrix>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl MultiViewDataset {
    /// Construct a dataset; panics if view instance counts or label length disagree.
    pub fn new(views: Vec<Matrix>, labels: Vec<usize>, n_classes: usize) -> Self {
        assert!(
            !views.is_empty(),
            "a multi-view dataset needs at least one view"
        );
        let n = views[0].cols();
        for (p, v) in views.iter().enumerate() {
            assert_eq!(
                v.cols(),
                n,
                "view {p} has {} instances but view 0 has {n}",
                v.cols()
            );
        }
        assert_eq!(labels.len(), n, "labels length must match instance count");
        if n > 0 {
            let max_label = labels.iter().copied().max().unwrap_or(0);
            assert!(
                max_label < n_classes,
                "label {max_label} out of range for {n_classes} classes"
            );
        }
        Self {
            views,
            labels,
            n_classes,
        }
    }

    /// The per-view data matrices (`d_p × N`).
    pub fn views(&self) -> &[Matrix] {
        &self.views
    }

    /// View `p` as a `d_p × N` matrix.
    pub fn view(&self, p: usize) -> &Matrix {
        &self.views[p]
    }

    /// Class labels, one per instance.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no instances.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of views.
    pub fn num_views(&self) -> usize {
        self.views.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-view feature dimensions.
    pub fn dimensions(&self) -> Vec<usize> {
        self.views.iter().map(|v| v.rows()).collect()
    }

    /// Extract the sub-dataset containing the given instances (columns), in order.
    pub fn subset(&self, indices: &[usize]) -> MultiViewDataset {
        let views = self
            .views
            .iter()
            .map(|v| select_columns(v, indices))
            .collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        MultiViewDataset {
            views,
            labels,
            n_classes: self.n_classes,
        }
    }

    /// Concatenate all views vertically into a single `(Σ d_p) × N` matrix.
    ///
    /// This is the "CAT" baseline representation; each view is L2-normalized per feature
    /// beforehand by the caller if desired.
    pub fn concatenated(&self) -> Matrix {
        let mut acc = self.views[0].clone();
        for v in &self.views[1..] {
            acc = acc.vstack(v).expect("views share the instance axis");
        }
        acc
    }

    /// Count instances per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// Column selection for `d × N` matrices (column = instance).
fn select_columns(m: &Matrix, indices: &[usize]) -> Matrix {
    m.select_columns(indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MultiViewDataset {
        let v1 = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let v2 = Matrix::from_rows(&[vec![7.0, 8.0, 9.0]]).unwrap();
        MultiViewDataset::new(vec![v1, v2], vec![0, 1, 0], 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.num_views(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.dimensions(), vec![2, 1]);
        assert_eq!(d.class_counts(), vec![2, 1]);
        assert_eq!(d.view(1)[(0, 2)], 9.0);
    }

    #[test]
    fn subset_selects_columns_and_labels() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.view(0)[(0, 0)], 3.0);
        assert_eq!(s.view(0)[(0, 1)], 1.0);
    }

    #[test]
    fn concatenated_stacks_views() {
        let d = tiny();
        let cat = d.concatenated();
        assert_eq!(cat.shape(), (3, 3));
        assert_eq!(cat[(2, 1)], 8.0);
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn mismatched_labels_panic() {
        let v1 = Matrix::zeros(2, 3);
        MultiViewDataset::new(vec![v1], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "instances")]
    fn mismatched_views_panic() {
        let v1 = Matrix::zeros(2, 3);
        let v2 = Matrix::zeros(2, 4);
        MultiViewDataset::new(vec![v1, v2], vec![0, 1, 0], 2);
    }
}
