//! Synthetic multi-view datasets, kernels and splits for the TCCA reproduction.
//!
//! The paper evaluates on three real datasets — SecStr (protein secondary structure),
//! the UCI Internet-Advertisements collection and the NUS-WIDE mammal subset — none of
//! which can be redistributed with this repository. This crate generates synthetic
//! stand-ins from a shared latent-factor model that preserves the properties the
//! experiments probe (see DESIGN.md §4 "Substitutions"):
//!
//! * every instance carries a low-dimensional **shared latent code** observable only
//!   jointly across the views (this is exactly the structure CCA-family methods exploit),
//! * each view adds its own loading matrix, view-private nuisance factors and noise,
//! * the per-dataset generators match the paper's view dimensionalities, class counts
//!   and labeled/unlabeled regime.
//!
//! The crate also provides the χ²/RBF/linear kernels and the Gram-matrix utilities used
//! by the kernel experiments (Fig. 6 / Table 4), and the split/sampling helpers that
//! implement the paper's transductive evaluation protocol.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod ads;
mod kernels;
mod multiview;
mod nuswide;
mod rng;
mod secstr;
mod split;
mod synth;

pub use ads::{ads_dataset, AdsConfig};
pub use kernels::{
    center_kernel, chi_square_distance, euclidean_distance, gram_matrix, kernel_from_distance,
    Kernel,
};
pub use multiview::MultiViewDataset;
pub use nuswide::{nuswide_dataset, NusWideConfig};
pub use rng::GaussianRng;
pub use secstr::{secstr_dataset, SecStrConfig};
pub use split::{
    labeled_subset, labeled_subset_per_class, train_test_split, validation_split, Split,
};
pub use synth::{LatentMultiViewConfig, ViewNonlinearity, ViewSpec};
