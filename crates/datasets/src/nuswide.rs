//! NUS-WIDE-mammal-like web image annotation dataset stand-in.
//!
//! The paper annotates a 10-concept mammal subset of NUS-WIDE (bear, cat, cow, dog, elk,
//! fox, horse, tiger, whale, zebra) using three visual views: a 500-dimensional SIFT
//! bag-of-visual-words histogram, a 144-dimensional color auto-correlogram and a
//! 128-dimensional wavelet texture vector, with {4, 6, 8} labeled images per concept and
//! a kNN classifier. Concepts overlap heavily (cat vs tiger), which is why absolute
//! accuracies sit in the 15–26% range.
//!
//! The stand-in keeps ten highly confusable classes, the exact view dimensionalities,
//! non-negative histogram-like features (so the χ² kernel in the non-linear experiments
//! is meaningful) and the few-labels regime.

use crate::synth::{LatentMultiViewConfig, ViewNonlinearity, ViewSpec};
use crate::MultiViewDataset;

/// Configuration for the NUS-WIDE-like generator.
#[derive(Debug, Clone)]
pub struct NusWideConfig {
    /// Total number of instances.
    pub n_instances: usize,
    /// RNG seed.
    pub seed: u64,
    /// Latent-code noise; larger values make concepts more confusable.
    pub difficulty: f64,
}

impl Default for NusWideConfig {
    fn default() -> Self {
        Self {
            n_instances: 2_000,
            seed: 41,
            difficulty: 1.35,
        }
    }
}

/// Generate a NUS-WIDE-mammal-like dataset: 10 classes, histogram views of
/// 500/144/128 dimensions.
pub fn nuswide_dataset(config: &NusWideConfig) -> MultiViewDataset {
    let view = |dim: usize, coverage: f64, noise: f64| ViewSpec {
        dimension: dim,
        private_factors: 10,
        noise,
        nonlinearity: ViewNonlinearity::Histogram,
        shared_coverage: coverage,
    };
    LatentMultiViewConfig {
        n_instances: config.n_instances,
        n_classes: 10,
        // Ten concepts, kept balanced like the paper's per-concept sampling; a mixture
        // of ten random class means is asymmetric, so the high-order signal survives.
        class_proportions: None,
        latent_dim: 16,
        latent_noise: config.difficulty,
        latent_skewness: 1.0,
        class_separation: 1.7,
        // Scene context (lighting, background) correlates pairs of visual descriptors
        // without being concept-specific.
        pairwise_nuisance: 1.0,
        views: vec![
            view(500, 0.7, 0.5),
            view(144, 0.6, 0.6),
            view(128, 0.6, 0.6),
        ],
        seed: config.seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let d = nuswide_dataset(&NusWideConfig {
            n_instances: 200,
            ..NusWideConfig::default()
        });
        assert_eq!(d.dimensions(), vec![500, 144, 128]);
        assert_eq!(d.num_classes(), 10);
    }

    #[test]
    fn features_are_histograms() {
        let d = nuswide_dataset(&NusWideConfig {
            n_instances: 30,
            ..NusWideConfig::default()
        });
        for p in 0..3 {
            let v = d.view(p);
            for j in 0..v.cols() {
                let sum: f64 = (0..v.rows()).map(|i| v[(i, j)]).sum();
                assert!((sum - 1.0).abs() < 1e-9);
                for i in 0..v.rows() {
                    assert!(v[(i, j)] >= 0.0);
                }
            }
        }
    }

    #[test]
    fn ten_roughly_balanced_classes() {
        let d = nuswide_dataset(&NusWideConfig {
            n_instances: 500,
            ..NusWideConfig::default()
        });
        let counts = d.class_counts();
        assert_eq!(counts.len(), 10);
        for &c in &counts {
            assert!(c == 50, "counts {counts:?}");
        }
    }
}
