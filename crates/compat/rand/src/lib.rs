//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API used by this workspace.
//!
//! The build environment has no access to a crates.io registry, so the workspace
//! vendors this minimal, dependency-free implementation instead: a deterministic
//! xoshiro256++ generator seeded through SplitMix64, exposing `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] (uniform `f64` in `[0, 1)`) and
//! [`Rng::gen_range`] for the `f64`/`usize` range flavours the code relies on.
//!
//! Everything is fully deterministic given the seed, which the experiment protocol
//! ("five random choices of the labeled instances") depends on. The streams differ
//! from the real `rand` crate's ChaCha-based `StdRng`, which only shifts which
//! pseudo-random draws a given seed produces — all consumers treat seeds as opaque.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A generator constructible from a `u64` seed (the only constructor the workspace
/// uses; the real trait's `from_seed`/`Seed` machinery is intentionally omitted).
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface, mirroring the `rand::Rng` method names.
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`start..end` for `f64`/`usize`,
    /// `start..=end` for `usize`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types with a standard distribution understood by [`Rng::gen`].
pub trait SampleStandard {
    /// Draw one sample from the standard distribution of `Self`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let span = (end - start) as u64 + 1;
        start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_doubles_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&j));
        }
        // Inclusive ranges reach both endpoints.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
