//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by this workspace's
//! property tests.
//!
//! The build environment has no crates.io access, so this crate implements the small
//! surface the tests rely on: range and tuple [`strategy::Strategy`]s, `prop_map` /
//! `prop_flat_map`, [`collection::vec`], the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` attribute, and the `prop_assert!`/`prop_assert_eq!`
//! assertion macros.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure seeds: each
//! test runs `cases` deterministic pseudo-random cases (seeded by the case index), and
//! a failing case panics with the formatted assertion message. That preserves the
//! regression value of the property tests while keeping the implementation tiny.

#![warn(missing_docs)]

/// Deterministic case generation and test configuration.
pub mod test_runner {
    use std::fmt;

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for the given case index; the stream depends only on the index.
        pub fn deterministic(case: u64) -> Self {
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Subset of proptest's run configuration: the number of cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed test case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Vec`s of a fixed length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generate vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs `cases` times with
/// freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(u64::from(case));
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )*
                    let outcome = (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body (fails the current case).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0..1.0f64, s in 1u64..5) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!((1..5).contains(&s));
        }

        #[test]
        fn combinators_compose(v in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0..1.0f64, r * c).prop_map(move |data| (r, c, data))
        })) {
            let (r, c, data) = v;
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn early_return_is_supported(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        let s = 0.0..1.0f64;
        for _ in 0..16 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
