//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API used by this workspace's
//! benchmarks.
//!
//! The build environment has no crates.io access, so this crate provides a small
//! wall-clock harness with the same surface: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`] and the [`criterion_group!`]/[`criterion_main!`] macros. Each
//! benchmark runs its closure `sample_size` times and prints mean / min wall-clock
//! time per iteration. There is no statistical analysis, warm-up or HTML report —
//! enough to keep `cargo bench` building and giving usable relative numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter, e.g. `view/3`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    fn with_iterations(iterations: usize) -> Self {
        Self {
            samples: Vec::with_capacity(iterations),
            iterations,
        }
    }

    /// Run `routine` once per sample, recording each sample's wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let value = routine();
            self.samples.push(start.elapsed());
            drop(value);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark (mirrors criterion's method; here it is
    /// simply the number of timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut bencher = Bencher::with_iterations(self.sample_size);
        f(&mut bencher);
        self.report(&label, &bencher);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_iterations(self.sample_size);
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Finish the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        if bencher.samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{label}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            bencher.samples.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declare a group function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("view", 2).to_string(), "view/2");
        assert_eq!(BenchmarkId::from_parameter(300).to_string(), "300");
    }
}
