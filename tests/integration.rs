//! Cross-crate integration tests: the full pipeline from synthetic multi-view data
//! through dimension reduction to downstream classification.

use multiview_tcca::prelude::*;

fn split_indices(n: usize, n_labeled: usize) -> (Vec<usize>, Vec<usize>) {
    ((0..n_labeled).collect(), (n_labeled..n).collect())
}

fn transductive_rls_accuracy(embedding: &Matrix, labels: &[usize], n_classes: usize, n_labeled: usize) -> f64 {
    let (labeled, rest) = split_indices(labels.len(), n_labeled);
    let train_labels: Vec<usize> = labeled.iter().map(|&i| labels[i]).collect();
    let test_labels: Vec<usize> = rest.iter().map(|&i| labels[i]).collect();
    let rls = RlsClassifier::fit(
        &embedding.select_rows(&labeled),
        &train_labels,
        n_classes,
        1e-2,
    );
    accuracy(&rls.predict(&embedding.select_rows(&rest)), &test_labels)
}

/// Trim every view to its first `d` features. The order-3 covariance tensor has
/// `d₁·d₂·d₃` entries estimated from `N` samples, so small-N tests use trimmed views to
/// keep the estimation noise (and the runtime) down — the full-size sweeps live in the
/// `experiments` harness.
fn trim_views(data: &MultiViewDataset, d: usize) -> Vec<Matrix> {
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..v.rows().min(d)).collect::<Vec<_>>()))
        .collect()
}

#[test]
fn tcca_embedding_supports_classification_above_majority_baseline() {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 1500,
        seed: 17,
        difficulty: 0.65,
    });
    let views = trim_views(&data, 50);
    let model = Tcca::fit(&views, &TccaOptions::with_rank(10)).unwrap();
    let embedding = model.transform(&views).unwrap();
    let acc = transductive_rls_accuracy(&embedding, data.labels(), data.num_classes(), 150);

    // Majority-class baseline on the same test split.
    let (_, rest) = split_indices(data.len(), 150);
    let test_labels: Vec<usize> = rest.iter().map(|&i| data.labels()[i]).collect();
    let mut counts = vec![0usize; data.num_classes()];
    for &l in &test_labels {
        counts[l] += 1;
    }
    let majority = *counts.iter().max().unwrap() as f64 / test_labels.len() as f64;

    // On this scaled-down stand-in the margins are small (the paper's own SecStr margins
    // over the 57% baseline are only a few points); we require the embedding to carry
    // real signal — clearly above a coin flip and within a few points of the majority
    // baseline — and leave the method-ordering claims to the experiment harness, which
    // uses the larger unlabeled pools where TCCA's advantage materializes.
    assert!(
        acc > 0.52 && acc > majority - 0.04,
        "TCCA accuracy {acc:.3} too far below the majority baseline {majority:.3}"
    );
}

#[test]
fn tcca_outperforms_single_view_features_on_planted_data() {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 1500,
        seed: 23,
        difficulty: 0.8,
    });
    let views = trim_views(&data, 50);
    let model = Tcca::fit(&views, &TccaOptions::with_rank(10)).unwrap();
    let embedding = model.transform(&views).unwrap();
    let tcca_acc = transductive_rls_accuracy(&embedding, data.labels(), data.num_classes(), 100);

    let mut best_single = 0.0f64;
    for view in &views {
        let features = view.transpose();
        let acc = transductive_rls_accuracy(&features, data.labels(), data.num_classes(), 100);
        best_single = best_single.max(acc);
    }
    assert!(
        tcca_acc > best_single - 0.02,
        "TCCA ({tcca_acc:.3}) should be at least comparable to the best single view ({best_single:.3})"
    );
}

#[test]
fn linear_and_kernel_tcca_agree_for_linear_kernels() {
    // With linear kernels, KTCCA spans the same subspace as linear TCCA: the dominant
    // canonical variables should be strongly correlated. Uses a clean planted shared
    // signal (skewed, so the order-3 moment is non-zero) rather than the noisy dataset
    // generators so the dominant component is unambiguous.
    let n = 80;
    let mut rng = datasets::GaussianRng::new(31);
    let dims = [6usize, 5, 4];
    let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        let t = if rng.bernoulli(0.25) { 1.5 } else { -0.5 };
        for v in views.iter_mut() {
            for i in 0..v.rows() {
                v[(i, j)] = t * (i as f64 + 1.0) + 0.2 * rng.standard_normal();
            }
        }
    }
    let tcca = Tcca::fit(&views, &TccaOptions::with_rank(1).epsilon(1e-3)).unwrap();
    let kernels: Vec<Matrix> = views
        .iter()
        .map(|v| center_kernel(&gram_matrix(v, Kernel::Linear)))
        .collect();
    let ktcca = Ktcca::fit(&kernels, &KtccaOptions::with_rank(1).epsilon(1e-3)).unwrap();

    let z_lin = tcca.transform_view(0, &views[0]).unwrap().column(0);
    let z_ker = ktcca.transform_view(0, &kernels[0]).unwrap().column(0);
    let n = z_lin.len() as f64;
    let (ml, mk) = (
        z_lin.iter().sum::<f64>() / n,
        z_ker.iter().sum::<f64>() / n,
    );
    let mut num = 0.0;
    let mut dl = 0.0;
    let mut dk = 0.0;
    for (a, b) in z_lin.iter().zip(z_ker.iter()) {
        num += (a - ml) * (b - mk);
        dl += (a - ml) * (a - ml);
        dk += (b - mk) * (b - mk);
    }
    let corr = (num / (dl.sqrt() * dk.sqrt())).abs();
    assert!(corr > 0.9, "linear/kernel canonical variables correlate only {corr:.3}");
}

#[test]
fn baselines_and_tcca_share_the_embedding_contract() {
    // Every multi-view method must produce an N × dim embedding aligned with the
    // dataset's instance order, so the harness can treat them interchangeably.
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 120,
        seed: 5,
        difficulty: 1.0,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..30).collect::<Vec<_>>()))
        .collect();
    let n = data.len();
    let rank = 4;

    let cca = PairwiseCca::fit(&views, rank, 1e-2).unwrap();
    for z in cca.transform_all(&views).unwrap() {
        assert_eq!(z.rows(), n);
        assert_eq!(z.cols(), 2 * rank);
    }
    let ccals = CcaLs::fit(&views, rank, 1e-2).unwrap();
    assert_eq!(ccals.transform(&views).unwrap().shape(), (n, 3 * rank));
    let maxvar = CcaMaxVar::fit(&views, rank, 1e-2).unwrap();
    assert_eq!(maxvar.transform(&views).unwrap().shape(), (n, 3 * rank));
    let dse = Dse::fit(&views, rank, 20).unwrap();
    assert_eq!(dse.embedding().shape(), (n, rank));
    let ssmvd = Ssmvd::fit(&views, rank, 20).unwrap();
    assert_eq!(ssmvd.embedding().shape(), (n, rank));
    let tcca = Tcca::fit(&views, &TccaOptions::with_rank(rank)).unwrap();
    assert_eq!(tcca.transform(&views).unwrap().shape(), (n, 3 * rank));
}

#[test]
fn knn_on_kernel_embeddings_beats_chance_for_ktcca() {
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 150,
        seed: 43,
        difficulty: 0.8,
    });
    let kernels: Vec<Matrix> = data
        .views()
        .iter()
        .enumerate()
        .map(|(p, v)| {
            let kernel = if p == 0 {
                Kernel::ExpChiSquare
            } else {
                Kernel::ExpEuclidean
            };
            center_kernel(&gram_matrix(v, kernel))
        })
        .collect();
    let model = Ktcca::fit(&kernels, &KtccaOptions::with_rank(8).epsilon(1e-1)).unwrap();
    let embedding = model.transform(&kernels).unwrap();

    // 10 labeled per class.
    let all: Vec<usize> = (0..data.len()).collect();
    let split = datasets::labeled_subset_per_class(&all, data.labels(), data.num_classes(), 10, 3);
    let train = embedding.select_rows(&split.first);
    let train_labels: Vec<usize> = split.first.iter().map(|&i| data.labels()[i]).collect();
    let test = embedding.select_rows(&split.second);
    let test_labels: Vec<usize> = split.second.iter().map(|&i| data.labels()[i]).collect();
    let knn = KnnClassifier::fit(&train, &train_labels, data.num_classes(), 5);
    let acc = accuracy(&knn.predict(&test), &test_labels);
    assert!(
        acc > 1.3 / data.num_classes() as f64,
        "KTCCA+kNN accuracy {acc:.3} not clearly above chance"
    );
}

#[test]
fn experiment_runner_smoke_test() {
    // The bench harness lives in a separate crate; here we only check the public
    // estimators compose with the learners under the paper's protocol shapes.
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 250,
        seed: 2,
        difficulty: 0.7,
    });
    for rank in [2usize, 5] {
        let model = Tcca::fit(data.views(), &TccaOptions::with_rank(rank)).unwrap();
        let z = model.transform(data.views()).unwrap();
        assert_eq!(z.cols(), 3 * rank);
        let acc = transductive_rls_accuracy(&z, data.labels(), data.num_classes(), 60);
        assert!((0.0..=1.0).contains(&acc));
    }
}
