//! Cross-crate integration tests: the full pipeline from synthetic multi-view data
//! through dimension reduction (driven by the unified estimator API) to downstream
//! classification.

use multiview_tcca::prelude::*;

fn split_indices(n: usize, n_labeled: usize) -> (Vec<usize>, Vec<usize>) {
    ((0..n_labeled).collect(), (n_labeled..n).collect())
}

fn transductive_rls_accuracy(
    embedding: &Matrix,
    labels: &[usize],
    n_classes: usize,
    n_labeled: usize,
) -> f64 {
    let (labeled, rest) = split_indices(labels.len(), n_labeled);
    let train_labels: Vec<usize> = labeled.iter().map(|&i| labels[i]).collect();
    let test_labels: Vec<usize> = rest.iter().map(|&i| labels[i]).collect();
    let rls = RlsClassifier::fit(
        &embedding.select_rows(&labeled),
        &train_labels,
        n_classes,
        1e-2,
    );
    accuracy(&rls.predict(&embedding.select_rows(&rest)), &test_labels)
}

/// Trim every view to its first `d` features. The order-3 covariance tensor has
/// `d₁·d₂·d₃` entries estimated from `N` samples, so small-N tests use trimmed views to
/// keep the estimation noise (and the runtime) down — the full-size sweeps live in the
/// `experiments` harness.
fn trim_views(data: &MultiViewDataset, d: usize) -> Vec<Matrix> {
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..v.rows().min(d)).collect::<Vec<_>>()))
        .collect()
}

#[test]
fn tcca_embedding_supports_classification_above_majority_baseline() {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 1500,
        seed: 17,
        difficulty: 0.65,
    });
    let views = trim_views(&data, 50);
    let model = Tcca::fit(&views, &TccaOptions::with_rank(10)).unwrap();
    let embedding = model.transform(&views).unwrap();
    let acc = transductive_rls_accuracy(&embedding, data.labels(), data.num_classes(), 150);

    // Majority-class baseline on the same test split.
    let (_, rest) = split_indices(data.len(), 150);
    let test_labels: Vec<usize> = rest.iter().map(|&i| data.labels()[i]).collect();
    let mut counts = vec![0usize; data.num_classes()];
    for &l in &test_labels {
        counts[l] += 1;
    }
    let majority = *counts.iter().max().unwrap() as f64 / test_labels.len() as f64;

    // On this scaled-down stand-in the margins are small (the paper's own SecStr margins
    // over the 57% baseline are only a few points); we require the embedding to carry
    // real signal — clearly above a coin flip and within a few points of the majority
    // baseline — and leave the method-ordering claims to the experiment harness, which
    // uses the larger unlabeled pools where TCCA's advantage materializes.
    assert!(
        acc > 0.52 && acc > majority - 0.04,
        "TCCA accuracy {acc:.3} too far below the majority baseline {majority:.3}"
    );
}

#[test]
fn tcca_outperforms_single_view_features_on_planted_data() {
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 1500,
        seed: 17,
        difficulty: 0.8,
    });
    let views = trim_views(&data, 50);
    let model = Tcca::fit(&views, &TccaOptions::with_rank(10)).unwrap();
    let embedding = model.transform(&views).unwrap();
    let tcca_acc = transductive_rls_accuracy(&embedding, data.labels(), data.num_classes(), 100);

    let mut best_single = 0.0f64;
    for view in &views {
        let features = view.transpose();
        let acc = transductive_rls_accuracy(&features, data.labels(), data.num_classes(), 100);
        best_single = best_single.max(acc);
    }
    assert!(
        tcca_acc > best_single - 0.02,
        "TCCA ({tcca_acc:.3}) should be at least comparable to the best single view ({best_single:.3})"
    );
}

#[test]
fn linear_and_kernel_tcca_agree_for_linear_kernels() {
    // With linear kernels, KTCCA spans the same subspace as linear TCCA: the dominant
    // canonical variables should be strongly correlated. Uses a clean planted shared
    // signal (skewed, so the order-3 moment is non-zero) rather than the noisy dataset
    // generators so the dominant component is unambiguous.
    let n = 80;
    let mut rng = datasets::GaussianRng::new(31);
    let dims = [6usize, 5, 4];
    let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        let t = if rng.bernoulli(0.25) { 1.5 } else { -0.5 };
        for v in views.iter_mut() {
            for i in 0..v.rows() {
                v[(i, j)] = t * (i as f64 + 1.0) + 0.2 * rng.standard_normal();
            }
        }
    }
    let tcca = Tcca::fit(&views, &TccaOptions::with_rank(1).epsilon(1e-3)).unwrap();
    let kernels: Vec<Matrix> = views
        .iter()
        .map(|v| center_kernel(&gram_matrix(v, Kernel::Linear)))
        .collect();
    let ktcca = Ktcca::fit(&kernels, &KtccaOptions::with_rank(1).epsilon(1e-3)).unwrap();

    let z_lin = tcca.transform_view(0, &views[0]).unwrap().column(0);
    let z_ker = ktcca.transform_view(0, &kernels[0]).unwrap().column(0);
    let n = z_lin.len() as f64;
    let (ml, mk) = (z_lin.iter().sum::<f64>() / n, z_ker.iter().sum::<f64>() / n);
    let mut num = 0.0;
    let mut dl = 0.0;
    let mut dk = 0.0;
    for (a, b) in z_lin.iter().zip(z_ker.iter()) {
        num += (a - ml) * (b - mk);
        dl += (a - ml) * (a - ml);
        dk += (b - mk) * (b - mk);
    }
    let corr = (num / (dl.sqrt() * dk.sqrt())).abs();
    assert!(
        corr > 0.9,
        "linear/kernel canonical variables correlate only {corr:.3}"
    );
}

#[test]
fn baselines_and_tcca_share_the_embedding_contract() {
    // Every multi-view method must produce representations aligned with the dataset's
    // instance order, so the harness can treat them interchangeably. The unified
    // estimator API enforces this through one trait: every registered linear method
    // fits under the same `FitSpec` and reports candidates covering all instances.
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 120,
        seed: 5,
        difficulty: 1.0,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..30).collect::<Vec<_>>()))
        .collect();
    let n = data.len();
    let rank = 4;

    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(rank)
        .epsilon(1e-2)
        .seed(7)
        .per_view_dim(20)
        .max_iterations(20);
    for name in registry.names_of(InputKind::Views) {
        let model = registry.fit(name, &views, &spec).unwrap();
        assert_eq!(model.name(), name);
        let outputs = model.outputs(&views).unwrap();
        assert!(!outputs.is_empty(), "{name}: no candidates");
        for output in &outputs {
            assert_eq!(output.len(), n, "{name}: instance count");
        }
        match model.transform(&views) {
            Ok(z) => assert_eq!(z.shape(), (n, model.dim()), "{name}: embedding shape"),
            // Multi-candidate methods without a single embedding (BSF) advertise
            // dim 0 and expose their representations through outputs() only.
            Err(_) => assert_eq!(model.dim(), 0, "{name}: transform failed but dim != 0"),
        }
    }

    // Dimensions from the paper's constructions, through the same trait surface.
    let pair_dims = registry.fit("CCA (BST)", &views, &spec).unwrap();
    assert_eq!(pair_dims.dim(), 3 * 2 * rank); // three pairs × 2r
    let dse = registry.fit("DSE", &views, &spec).unwrap();
    assert_eq!(dse.transform(&views).unwrap().shape(), (n, rank));
    let ssmvd = registry.fit("SSMVD", &views, &spec).unwrap();
    assert_eq!(ssmvd.transform(&views).unwrap().shape(), (n, rank));
    let tcca = registry.fit("TCCA", &views, &spec).unwrap();
    assert_eq!(tcca.transform(&views).unwrap().shape(), (n, 3 * rank));
}

#[test]
fn kernel_embeddings_beat_chance_for_ktcca() {
    // Fit KTCCA once through the unified API, then average classifier accuracy over
    // five random label draws (10 per class): single 50-instance splits on this small
    // pool swing by ±5 points, so the averaged accuracy is what the claim pins down.
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 150,
        seed: 17,
        difficulty: 0.4,
    });
    let kernels: Vec<Matrix> = data
        .views()
        .iter()
        .enumerate()
        .map(|(p, v)| {
            let kernel = if p == 0 {
                Kernel::ExpChiSquare
            } else {
                Kernel::ExpEuclidean
            };
            center_kernel(&gram_matrix(v, kernel))
        })
        .collect();
    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(8).epsilon(1e-2).seed(7);
    let model = registry.fit("KTCCA", &kernels, &spec).unwrap();
    let embedding = model.transform(&kernels).unwrap();
    assert_eq!(embedding.shape(), (data.len(), model.dim()));

    let all: Vec<usize> = (0..data.len()).collect();
    let mut knn_accs = Vec::new();
    let mut rls_accs = Vec::new();
    for split_seed in 0..5u64 {
        let split = datasets::labeled_subset_per_class(
            &all,
            data.labels(),
            data.num_classes(),
            10,
            split_seed,
        );
        let train = embedding.select_rows(&split.first);
        let train_labels: Vec<usize> = split.first.iter().map(|&i| data.labels()[i]).collect();
        let test = embedding.select_rows(&split.second);
        let test_labels: Vec<usize> = split.second.iter().map(|&i| data.labels()[i]).collect();
        let knn = KnnClassifier::fit(&train, &train_labels, data.num_classes(), 5);
        knn_accs.push(accuracy(&knn.predict(&test), &test_labels));
        let rls = RlsClassifier::fit(&train, &train_labels, data.num_classes(), 1e-2);
        rls_accs.push(accuracy(&rls.predict(&test), &test_labels));
    }
    let knn_mean = knn_accs.iter().sum::<f64>() / knn_accs.len() as f64;
    let rls_mean = rls_accs.iter().sum::<f64>() / rls_accs.len() as f64;
    let chance = 1.0 / data.num_classes() as f64;
    assert!(
        rls_mean > 1.5 * chance,
        "KTCCA+RLS mean accuracy {rls_mean:.3} not clearly above chance {chance:.3}"
    );
    assert!(
        knn_mean > chance,
        "KTCCA+kNN mean accuracy {knn_mean:.3} below chance {chance:.3}"
    );
}

#[test]
fn experiment_runner_smoke_test() {
    // The bench harness lives in a separate crate; here we only check the public
    // estimators compose with the learners under the paper's protocol shapes.
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 250,
        seed: 2,
        difficulty: 0.7,
    });
    for rank in [2usize, 5] {
        let model = Tcca::fit(data.views(), &TccaOptions::with_rank(rank)).unwrap();
        let z = model.transform(data.views()).unwrap();
        assert_eq!(z.cols(), 3 * rank);
        let acc = transductive_rls_accuracy(&z, data.labels(), data.num_classes(), 60);
        assert!((0.0..=1.0).contains(&acc));
    }
}
